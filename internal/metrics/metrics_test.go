package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterSingleShard(t *testing.T) {
	c := NewCounter(0) // clamps to 1
	c.Add(0, 5)
	c.Add(17, 3) // wraps onto shard 0
	if got := c.Total(); got != 8 {
		t.Fatalf("Total = %d, want 8", got)
	}
}

func TestCounterSharding(t *testing.T) {
	c := NewCounter(4)
	for tid := 0; tid < 8; tid++ {
		c.Add(tid, uint64(tid))
	}
	want := uint64(0 + 1 + 2 + 3 + 4 + 5 + 6 + 7)
	if got := c.Total(); got != want {
		t.Fatalf("Total = %d, want %d", got, want)
	}
}

func TestCounterConcurrent(t *testing.T) {
	const threads = 8
	const per = 10000
	c := NewCounter(threads)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Add(tid, 1)
			}
		}(tid)
	}
	wg.Wait()
	if got := c.Total(); got != threads*per {
		t.Fatalf("Total = %d, want %d", got, threads*per)
	}
}

func TestCounterShardRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16},
	} {
		c := NewCounter(tc.ask)
		if got := len(c.shards) / shardStride; got != tc.want {
			t.Errorf("NewCounter(%d): %d shards, want %d", tc.ask, got, tc.want)
		}
		if c.mask != uint64(tc.want-1) {
			t.Errorf("NewCounter(%d): mask %#x, want %#x", tc.ask, c.mask, tc.want-1)
		}
		// Wrapping stays total-preserving whatever the tid.
		for tid := 0; tid < 3*tc.want; tid++ {
			c.Add(tid, 2)
		}
		if got := c.Total(); got != uint64(6*tc.want) {
			t.Errorf("NewCounter(%d): Total = %d, want %d", tc.ask, got, 6*tc.want)
		}
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewCounter(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(3, 1)
	}
}

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %g, want 5", w.Mean())
	}
	// Sample stddev of this classic dataset is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(w.StdDev()-want) > 1e-12 {
		t.Fatalf("StdDev = %g, want %g", w.StdDev(), want)
	}
}

func TestWelfordDegenerate(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.StdDev() != 0 {
		t.Fatal("empty Welford not zero")
	}
	w.Add(42)
	if w.Mean() != 42 || w.StdDev() != 0 {
		t.Fatalf("single-sample Welford: mean=%g stddev=%g", w.Mean(), w.StdDev())
	}
}

// Property: Welford mean matches the naive mean for arbitrary inputs.
func TestWelfordMeanProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var w Welford
		var sum float64
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			w.Add(x)
			sum += x
			n++
		}
		if n == 0 {
			return w.Mean() == 0
		}
		naive := sum / float64(n)
		return math.Abs(w.Mean()-naive) <= 1e-6*(1+math.Abs(naive))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestContentionSnapshot(t *testing.T) {
	c := NewContention(4)
	c.PushFail.Add(0, 3)
	c.PushFail.Add(2, 1)
	c.PopFail.Add(1, 7)
	c.Steal.Add(3, 2)
	c.StealMiss.Add(0, 5)
	c.Spill.Add(2, 11)
	got := c.Snapshot()
	want := ContentionSnapshot{PushFail: 4, PopFail: 7, Steal: 2, StealMiss: 5, Spill: 11}
	if got != want {
		t.Fatalf("Snapshot = %+v, want %+v", got, want)
	}
}
