package metrics

import (
	"sync"
	"testing"
	"time"
)

// TestSnapshotRaceStress hammers a Counter and a Histogram from writer
// goroutines while readers merge snapshots concurrently, and asserts
// the observable totals are monotonic: a snapshot taken while writers
// run may lag, but it can never go backwards or overshoot the final
// count. Run under -race this also proves the snapshot paths are
// data-race-free against the sharded hot paths.
func TestSnapshotRaceStress(t *testing.T) {
	const (
		writers   = 8
		perWriter = 50000
	)
	c := NewCounter(writers)
	h := NewHistogram(writers)

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: interleave snapshots with the writers and record that
	// each observed total is >= the previous one from the same reader.
	readerErr := make(chan string, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastTotal, lastHist uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got := c.Total(); got < lastTotal {
					select {
					case readerErr <- "counter total went backwards":
					default:
					}
					return
				} else {
					lastTotal = got
				}
				s := h.Snapshot()
				if s.Total < lastHist {
					select {
					case readerErr <- "histogram total went backwards":
					default:
					}
					return
				}
				lastHist = s.Total
				// A torn histogram snapshot would break Counts/Total
				// consistency; Quantile on a consistent one never exceeds
				// Max.
				if s.Total > 0 && s.Quantile(0.99) > s.Max() {
					select {
					case readerErr <- "p99 above max in merged snapshot":
					default:
					}
					return
				}
			}
		}()
	}

	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(tid int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				c.Add(tid, 1)
				h.Record(tid, time.Duration(1+i%1000)*time.Microsecond)
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()

	select {
	case msg := <-readerErr:
		t.Fatal(msg)
	default:
	}
	if got := c.Total(); got != writers*perWriter {
		t.Fatalf("counter total %d, want %d", got, writers*perWriter)
	}
	if s := h.Snapshot(); s.Total != writers*perWriter {
		t.Fatalf("histogram total %d, want %d", s.Total, writers*perWriter)
	}
}
