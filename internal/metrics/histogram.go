package metrics

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// HistBuckets is the number of logarithmic histogram buckets: bucket b
// counts observations in [2^b, 2^(b+1)) nanoseconds, so 64 buckets
// cover every representable duration and a bucket index is one
// bits.Len64 away from the sample — no search, no float math on the
// recording path.
const HistBuckets = 64

// histRowStride pads each shard's bucket row so rows start on distinct
// cache lines and two threads never bounce a line over adjacent rows.
const histRowStride = HistBuckets + 8

// Histogram accumulates a latency distribution in log-spaced buckets,
// sharded per recording thread exactly like Counter: each thread
// increments buckets in its own padded row with one uncontended atomic
// add, and readers sum rows into a snapshot. This is the paper's
// no-shared-cache-lines discipline applied to the measurement itself,
// and what Röger & Mayer's survey asks of elastic-system monitoring:
// the instrument must not create the contention it measures.
type Histogram struct {
	rows []atomic.Uint64
	mask uint64
}

// NewHistogram returns a histogram with at least the given number of
// shards (rounded up to a power of two); callers pass the maximum
// number of recording threads. A non-positive value is treated as 1.
func NewHistogram(shards int) *Histogram {
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	return &Histogram{
		rows: make([]atomic.Uint64, n*histRowStride),
		mask: uint64(n - 1),
	}
}

// Record charges one observation to shard tid. Durations below 1ns
// clamp to the first bucket. Allocation-free and wait-free.
func (h *Histogram) Record(tid int, d time.Duration) {
	ns := int64(d)
	if ns < 1 {
		ns = 1
	}
	b := bits.Len64(uint64(ns)) - 1
	h.rows[(uint64(tid)&h.mask)*histRowStride+uint64(b)].Add(1)
}

// Snapshot sums every shard into a point-in-time reading. Like
// Counter.Total, each bucket is a lower bound of the true count at
// return time; the buckets are read in one pass so the snapshot is
// internally consistent to within the increments in flight during it.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for row := uint64(0); row <= h.mask; row++ {
		base := row * histRowStride
		for b := 0; b < HistBuckets; b++ {
			s.Counts[b] += h.rows[base+uint64(b)].Load()
		}
	}
	for _, c := range s.Counts {
		s.Total += c
	}
	return s
}

// HistogramSnapshot is a summed point-in-time reading of a Histogram.
type HistogramSnapshot struct {
	// Counts[b] is the number of observations in [2^b, 2^(b+1)) ns.
	Counts [HistBuckets]uint64
	// Total is the sum of all buckets.
	Total uint64
}

// Quantile returns an upper bound on the q-quantile (q in [0,1]): the
// top of the first bucket at which the cumulative count reaches
// q×Total. Bucket resolution means the true quantile lies within a
// factor of two below the returned value. Zero observations yield 0.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	need := uint64(q * float64(s.Total))
	if need < 1 {
		need = 1
	}
	var cum uint64
	for b, c := range s.Counts {
		cum += c
		if cum >= need {
			return bucketUpper(b)
		}
	}
	return bucketUpper(HistBuckets - 1)
}

// Max returns the upper bound of the highest occupied bucket.
func (s HistogramSnapshot) Max() time.Duration {
	for b := HistBuckets - 1; b >= 0; b-- {
		if s.Counts[b] > 0 {
			return bucketUpper(b)
		}
	}
	return 0
}

// Min returns the lower bound of the lowest occupied bucket.
func (s HistogramSnapshot) Min() time.Duration {
	for b, c := range s.Counts {
		if c > 0 {
			return time.Duration(uint64(1) << b)
		}
	}
	return 0
}

// bucketUpper is the exclusive top of bucket b, saturating at the
// maximum Duration for the last bucket.
func bucketUpper(b int) time.Duration {
	if b >= 62 {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(uint64(1) << (b + 1))
}

// String renders the standard percentile line the CLI and the debug
// endpoint both print.
func (s HistogramSnapshot) String() string {
	if s.Total == 0 {
		return "no samples"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d p50≤%v p90≤%v p99≤%v max≤%v",
		s.Total, s.Quantile(0.50), s.Quantile(0.90), s.Quantile(0.99), s.Max())
	return sb.String()
}
