package spl

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"streams/internal/tuple"
	"streams/internal/vm"
)

// Differential test between the two expression dispatch forms: the
// closure evaluator (eval in check.go) and the bytecode VM
// (compileExprVM + vm.Machine). On every expression the VM accepts, the
// two must agree exactly — same value, or a panic on both sides. The
// generator only produces constructs inside the VM's documented subset,
// so a compilation fall-back here is itself a bug.

// diffInType is the input tuple type the generated expressions range
// over: two attributes per scalar kind, so binary operators can mix
// attributes and literals of matching kinds.
var diffInType = TupleType{Fields: []TField{
	{Name: "a", Type: Int64},
	{Name: "b", Type: Int64},
	{Name: "f", Type: Float64},
	{Name: "g", Type: Float64},
	{Name: "s", Type: RString},
	{Name: "t", Type: RString},
	{Name: "p", Type: Boolean},
	{Name: "q", Type: Boolean},
}}

var diffFields = map[vm.Kind][]string{
	vm.KInt:   {"a", "b"},
	vm.KFloat: {"f", "g"},
	vm.KStr:   {"s", "t"},
	vm.KBool:  {"p", "q"},
}

// Literal pools. Zeros and short strings are deliberately common: they
// drive the error paths (division by zero, substring out of range,
// toInt parse failures) the two evaluators must agree on too.
var (
	diffInts    = []int64{-3, -1, 0, 0, 1, 2, 7, 100}
	diffFloats  = []float64{-2.5, -1, 0, 0, 0.5, 1, 3.75, 1e6}
	diffStrings = []string{"", "a", "abc", "héllo", "42", "-7", "3.5", "xyzzy"}
)

func diffLit(r *rand.Rand, k vm.Kind) Expr {
	switch k {
	case vm.KInt:
		return &IntLit{V: diffInts[r.Intn(len(diffInts))]}
	case vm.KFloat:
		return &FloatLit{V: diffFloats[r.Intn(len(diffFloats))]}
	case vm.KStr:
		return &StringLit{V: diffStrings[r.Intn(len(diffStrings))]}
	default:
		return &BoolLit{V: r.Intn(2) == 0}
	}
}

// diffLeaf is a literal, a bare attribute reference, or the
// stream-qualified spelling of the same attribute (S.x) — the three
// ways a value enters an expression.
func diffLeaf(r *rand.Rand, k vm.Kind) Expr {
	switch r.Intn(3) {
	case 0:
		return diffLit(r, k)
	case 1:
		return &Ident{Name: diffFields[k][r.Intn(2)]}
	default:
		return &AttrExpr{X: &Ident{Name: "S"}, Name: diffFields[k][r.Intn(2)]}
	}
}

// genExpr produces a random well-typed expression of VM kind k with at
// most depth levels of nesting, drawn from the full supported surface:
// typed arithmetic, comparisons, equality, short-circuit logic,
// conditionals, and the whitelisted builtins (including the panicking
// edges of substring and toInt, and the deliberately unfoldable spin).
func genExpr(r *rand.Rand, k vm.Kind, depth int) Expr {
	if depth <= 0 {
		return diffLeaf(r, k)
	}
	d := depth - 1
	switch k {
	case vm.KInt:
		switch r.Intn(7) {
		case 0:
			op := []Kind{PLUS, MINUS, STAR, SLASH, PERCENT}[r.Intn(5)]
			return &BinaryExpr{Op: op, X: genExpr(r, k, d), Y: genExpr(r, k, d)}
		case 1:
			return &UnaryExpr{Op: MINUS, X: genExpr(r, k, d)}
		case 2:
			return &CondExpr{C: genExpr(r, vm.KBool, d), T: genExpr(r, k, d), F: genExpr(r, k, d)}
		case 3:
			return &CallExpr{Name: "length", Args: []Expr{genExpr(r, vm.KStr, d)}}
		case 4:
			return &CallExpr{Name: "findFirst", Args: []Expr{genExpr(r, vm.KStr, d), genExpr(r, vm.KStr, d), genExpr(r, vm.KInt, d)}}
		case 5:
			return &CallExpr{Name: "toInt", Args: []Expr{genExpr(r, vm.KStr, d)}}
		default:
			return &BinaryExpr{Op: PLUS, X: genExpr(r, k, d), Y: genExpr(r, k, d)}
		}
	case vm.KFloat:
		switch r.Intn(6) {
		case 0:
			op := []Kind{PLUS, MINUS, STAR, SLASH}[r.Intn(4)]
			return &BinaryExpr{Op: op, X: genExpr(r, k, d), Y: genExpr(r, k, d)}
		case 1:
			return &UnaryExpr{Op: MINUS, X: genExpr(r, k, d)}
		case 2:
			return &CondExpr{C: genExpr(r, vm.KBool, d), T: genExpr(r, k, d), F: genExpr(r, k, d)}
		case 3:
			return &CallExpr{Name: "toFloat64", Args: []Expr{genExpr(r, vm.KInt, d)}}
		case 4:
			// spin burns real CPU: keep the argument a small literal.
			return &CallExpr{Name: "spin", Args: []Expr{&IntLit{V: r.Int63n(4)}}}
		default:
			return &CallExpr{Name: "toFloat64", Args: []Expr{genExpr(r, vm.KFloat, d)}}
		}
	case vm.KStr:
		switch r.Intn(6) {
		case 0:
			return &BinaryExpr{Op: PLUS, X: genExpr(r, k, d), Y: genExpr(r, k, d)}
		case 1:
			return &CondExpr{C: genExpr(r, vm.KBool, d), T: genExpr(r, k, d), F: genExpr(r, k, d)}
		case 2:
			name := []string{"lower", "upper"}[r.Intn(2)]
			return &CallExpr{Name: name, Args: []Expr{genExpr(r, k, d)}}
		case 3:
			return &CallExpr{Name: "substring", Args: []Expr{genExpr(r, vm.KStr, d), genExpr(r, vm.KInt, d), genExpr(r, vm.KInt, d)}}
		case 4:
			arg := []vm.Kind{vm.KInt, vm.KFloat, vm.KStr, vm.KBool}[r.Intn(4)]
			return &CallExpr{Name: "toString", Args: []Expr{genExpr(r, arg, d)}}
		default:
			return &BinaryExpr{Op: PLUS, X: genExpr(r, k, d), Y: genExpr(r, k, d)}
		}
	default: // bool
		switch r.Intn(6) {
		case 0:
			ok := []vm.Kind{vm.KInt, vm.KFloat, vm.KStr}[r.Intn(3)]
			op := []Kind{LANGLE, RANGLE, LEQ, GEQ}[r.Intn(4)]
			return &BinaryExpr{Op: op, X: genExpr(r, ok, d), Y: genExpr(r, ok, d)}
		case 1:
			ok := []vm.Kind{vm.KInt, vm.KFloat, vm.KStr, vm.KBool}[r.Intn(4)]
			op := []Kind{EQ, NEQ}[r.Intn(2)]
			return &BinaryExpr{Op: op, X: genExpr(r, ok, d), Y: genExpr(r, ok, d)}
		case 2:
			op := []Kind{ANDAND, OROR}[r.Intn(2)]
			return &BinaryExpr{Op: op, X: genExpr(r, k, d), Y: genExpr(r, k, d)}
		case 3:
			return &UnaryExpr{Op: NOT, X: genExpr(r, k, d)}
		case 4:
			return &CondExpr{C: genExpr(r, k, d), T: genExpr(r, k, d), F: genExpr(r, k, d)}
		default:
			return &UnaryExpr{Op: NOT, X: genExpr(r, k, d)}
		}
	}
}

func exprStr(e Expr) string {
	switch x := e.(type) {
	case *IntLit:
		return fmt.Sprint(x.V)
	case *FloatLit:
		return fmt.Sprintf("%g", x.V)
	case *StringLit:
		return fmt.Sprintf("%q", x.V)
	case *BoolLit:
		return fmt.Sprint(x.V)
	case *Ident:
		return x.Name
	case *AttrExpr:
		return exprStr(x.X) + "." + x.Name
	case *UnaryExpr:
		return fmt.Sprintf("(%v %s)", x.Op, exprStr(x.X))
	case *BinaryExpr:
		return fmt.Sprintf("(%s %v %s)", exprStr(x.X), x.Op, exprStr(x.Y))
	case *CondExpr:
		return fmt.Sprintf("(%s ? %s : %s)", exprStr(x.C), exprStr(x.T), exprStr(x.F))
	case *CallExpr:
		s := x.Name + "("
		for i, a := range x.Args {
			if i > 0 {
				s += ", "
			}
			s += exprStr(a)
		}
		return s + ")"
	default:
		return fmt.Sprintf("%T", e)
	}
}

func randTup(r *rand.Rand) Tup {
	return Tup{
		"a": diffInts[r.Intn(len(diffInts))],
		"b": diffInts[r.Intn(len(diffInts))],
		"f": diffFloats[r.Intn(len(diffFloats))],
		"g": diffFloats[r.Intn(len(diffFloats))],
		"s": diffStrings[r.Intn(len(diffStrings))],
		"t": diffStrings[r.Intn(len(diffStrings))],
		"p": r.Intn(2) == 0,
		"q": r.Intn(2) == 0,
	}
}

// runClosureExpr evaluates e in the closure evaluator over in.
func runClosureExpr(e Expr, in Tup) (out Value, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
		}
	}()
	env := newEnv(nil)
	for k, v := range in {
		env.vars[k] = v
	}
	env.vars["S"] = in
	return eval(e, env), false
}

// runVMExpr pushes in through the compiled program and reads back the
// single output attribute.
func runVMExpr(p *vm.Program, in Tup) (out Value, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
		}
	}()
	var m vm.Machine
	var got Tup
	m.Run(p, tuple.Tuple{Ref: in}, vm.EmitFunc(func(o tuple.Tuple) {
		got = refTup(o.Ref)
	}))
	return got["r"], false
}

// sameValue compares two same-typed scalar results, treating NaN as
// equal to NaN (float division can produce it on both paths).
func sameValue(a, b Value) bool {
	if af, ok := a.(float64); ok {
		bf, ok := b.(float64)
		return ok && (af == bf || (math.IsNaN(af) && math.IsNaN(bf)))
	}
	return a == b
}

func diffOne(t *testing.T, e Expr, p *vm.Program, in Tup) (panicked bool) {
	t.Helper()
	cv, cp := runClosureExpr(e, in)
	vv, vp := runVMExpr(p, in)
	if cp != vp {
		t.Fatalf("panic disagreement on %s\ninput %v\nclosure panicked=%v, vm panicked=%v",
			exprStr(e), in, cp, vp)
	}
	if cp {
		return true
	}
	if !sameValue(cv, vv) {
		t.Fatalf("value disagreement on %s\ninput %v\nclosure %v (%T), vm %v (%T)",
			exprStr(e), in, cv, cv, vv, vv)
	}
	return false
}

// TestVMDifferentialRandomExprs is the property test: on a fixed seed,
// hundreds of random well-typed expressions, each executed on several
// random inputs, must agree between the two evaluators. The seed is
// fixed so failures reproduce; the final counters prove the sweep
// exercised both the value path and the panic path.
func TestVMDifferentialRandomExprs(t *testing.T) {
	r := rand.New(rand.NewSource(20260808))
	kinds := []vm.Kind{vm.KInt, vm.KFloat, vm.KStr, vm.KBool}
	values, panics := 0, 0
	for i := 0; i < 600; i++ {
		e := genExpr(r, kinds[r.Intn(len(kinds))], 1+r.Intn(3))
		p := bindVM(compileExprVM(e, diffInType, "S"))
		if p == nil {
			t.Fatalf("trial %d: VM rejected a generated expression: %s", i, exprStr(e))
		}
		for j := 0; j < 4; j++ {
			if diffOne(t, e, p, randTup(r)) {
				panics++
			} else {
				values++
			}
		}
	}
	if values == 0 || panics == 0 {
		t.Fatalf("sweep did not cover both outcomes: %d values, %d panics", values, panics)
	}
}

// TestVMVecDifferentialRandomExprs is the batch-execution property
// test: every expression program the vectorizer accepts must agree
// with the scalar Machine over whole batches. The one asymmetry the
// contract allows is panics — the vectorized plan executes both sides
// of every conditional (if-conversion) and so may fault where the
// scalar path would not — but the direction that matters for
// correctness is checked exactly: if the vectorized run completes, no
// scalar row may panic, every output value must match, and the
// per-segment entry counts must be identical. A vectorized panic must
// leave the machine with a valid faulting-row attribution, and the
// scalar replay (the scheduler's fall-back) is by definition the
// reference behaviour.
func TestVMVecDifferentialRandomExprs(t *testing.T) {
	r := rand.New(rand.NewSource(20260809))
	kinds := []vm.Kind{vm.KInt, vm.KFloat, vm.KStr, vm.KBool}
	batches, vecPanics := 0, 0
	for i := 0; i < 300; i++ {
		e := genExpr(r, kinds[r.Intn(len(kinds))], 1+r.Intn(3))
		p := bindVM(compileExprVM(e, diffInType, "S"))
		if p == nil {
			t.Fatalf("trial %d: VM rejected a generated expression: %s", i, exprStr(e))
		}
		vp, err := vm.PlanVec(p)
		if err != nil {
			t.Fatalf("trial %d: vectorizer rejected the expression subset: %s\n%v", i, exprStr(e), err)
		}
		n := 2 + r.Intn(15)
		batch := make([]tuple.Tuple, n)
		ins := make([]Tup, n)
		for j := range batch {
			ins[j] = randTup(r)
			batch[j] = tuple.Tuple{Seq: uint64(j), Ref: ins[j]}
		}

		// Scalar reference, row by row.
		scalarOut := make([]Value, n)
		scalarPanic := make([]bool, n)
		var sm vm.Machine
		sm.Reset(p)
		for j := range batch {
			func() {
				defer func() {
					if rec := recover(); rec != nil {
						scalarPanic[j] = true
					}
				}()
				sm.Run(p, batch[j], vm.EmitFunc(func(o tuple.Tuple) {
					scalarOut[j] = refTup(o.Ref)["r"]
				}))
			}()
		}

		var bm vm.BatchMachine
		bm.Reset(vp)
		vecPanicked := false
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					vecPanicked = true
				}
			}()
			bm.Run(batch)
		}()
		if vecPanicked {
			vecPanics++
			if fr := bm.FaultRow(); fr < 0 || fr >= n {
				t.Fatalf("trial %d: vectorized panic with fault row %d outside the batch [0,%d)\nexpr %s",
					i, fr, n, exprStr(e))
			}
			continue
		}
		var vecOut []Value
		bm.EmitRows(vm.EmitFunc(func(o tuple.Tuple) {
			vecOut = append(vecOut, refTup(o.Ref)["r"])
		}))
		for j := range batch {
			if scalarPanic[j] {
				t.Fatalf("trial %d: scalar row %d panicked but the vectorized run completed\nexpr %s\ninput %v",
					i, j, exprStr(e), ins[j])
			}
		}
		if len(vecOut) != n {
			t.Fatalf("trial %d: vectorized emitted %d of %d rows\nexpr %s", i, len(vecOut), n, exprStr(e))
		}
		for j := range vecOut {
			if !sameValue(scalarOut[j], vecOut[j]) {
				t.Fatalf("trial %d: row %d disagrees on %s\ninput %v\nscalar %v (%T), vectorized %v (%T)",
					i, j, exprStr(e), ins[j], scalarOut[j], scalarOut[j], vecOut[j], vecOut[j])
			}
		}
		if got, want := bm.SegCounts(), sm.SegCounts(); !slicesEqualU64(got, want) {
			t.Fatalf("trial %d: seg counts diverge: vectorized %v scalar %v\nexpr %s", i, got, want, exprStr(e))
		}
		batches++
	}
	if batches == 0 {
		t.Fatalf("sweep completed no clean batches (%d vectorized panics)", vecPanics)
	}
}

func slicesEqualU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// vecDiffProgram is a fusable Custom → Filter → Custom pipeline: the
// filter becomes a selection-vector prune in the vectorized plan, so
// the fused differential covers dropped rows and multi-segment entry
// counts, not just straight-line expressions.
const vecDiffProgram = `
composite Main {
  graph
    stream<int64 x, int64 y> N = Beacon() { param iterations: 1; }
    stream<int64 a, int64 b> S1 = Custom(N) {
      logic onTuple N: { submit({ a = x * 3 + y, b = x - y }, S1); }
    }
    stream<int64 a, int64 b> S2 = Filter(S1) { param filter: a % 3 == 0; }
    stream<int64 r> S3 = Custom(S2) {
      logic onTuple S2: { submit({ r = a * b + 7 }, S3); }
    }
    () as Out = FileSink(S3) { param file: "/dev/null"; }
}
`

// fusedDiffProgs compiles src and fuses the named pipeline stages in
// order.
func fusedDiffProgs(t *testing.T, src string, stages ...string) *vm.Program {
	t.Helper()
	compiled, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	progs := make([]*vm.Program, len(stages))
	for _, n := range compiled.Graph.Nodes {
		pr, ok := n.Op.(vm.Programmed)
		if !ok || pr.VMProgram() == nil {
			continue
		}
		for i, st := range stages {
			if strings.HasSuffix(n.Op.Name(), "/"+st) {
				progs[i] = pr.VMProgram()
			}
		}
	}
	for i, p := range progs {
		if p == nil {
			t.Fatalf("pipeline stage %s did not compile to bytecode", stages[i])
		}
	}
	fused, err := vm.Fuse(progs)
	if err != nil {
		t.Fatal(err)
	}
	return fused
}

// TestVMVecDifferentialFusedFilterChain runs random batches through a
// fused three-segment pipeline with a mid-chain filter, scalar versus
// vectorized, and requires identical outputs (the filter's survivors,
// in order) and identical per-segment entry counts (the filter's drops
// must show in segment 3's count on both paths).
func TestVMVecDifferentialFusedFilterChain(t *testing.T) {
	fused := fusedDiffProgs(t, vecDiffProgram, "S1", "S2", "S3")
	vp, err := vm.PlanVec(fused)
	if err != nil {
		t.Fatalf("fused pipeline did not vectorize: %v", err)
	}
	r := rand.New(rand.NewSource(20260810))
	for _, n := range []int{1, 7, 64, 200} {
		batch := make([]tuple.Tuple, n)
		for j := range batch {
			batch[j] = tuple.Tuple{Seq: uint64(j), Ref: Tup{
				"x": r.Int63n(41) - 20,
				"y": r.Int63n(41) - 20,
			}}
		}
		var scalarOut []int64
		var sm vm.Machine
		sm.Reset(fused)
		for j := range batch {
			sm.Run(fused, batch[j], vm.EmitFunc(func(o tuple.Tuple) {
				scalarOut = append(scalarOut, refTup(o.Ref)["r"].(int64))
			}))
		}
		var vecOut []int64
		var bm vm.BatchMachine
		bm.Reset(vp)
		bm.Run(batch)
		bm.EmitRows(vm.EmitFunc(func(o tuple.Tuple) {
			vecOut = append(vecOut, refTup(o.Ref)["r"].(int64))
		}))
		if !reflect.DeepEqual(vecOut, scalarOut) {
			t.Fatalf("n=%d: outputs diverge\nvectorized %v\nscalar     %v", n, vecOut, scalarOut)
		}
		if got, want := bm.SegCounts(), sm.SegCounts(); !slicesEqualU64(got, want) {
			t.Fatalf("n=%d: seg counts diverge: vectorized %v scalar %v", n, got, want)
		}
	}
}

// vecDiffFilterTailProgram ends the pipeline on the Filter — the
// compiler-produced map|filter shape whose fused program has a Fresh
// interior segment and a forwarding final segment. The vectorized emit
// must materialize the Custom stage's rebuilt template (payload, Seq 0)
// rather than forward the original Beacon row.
const vecDiffFilterTailProgram = `
composite Main {
  graph
    stream<int64 x, int64 y> N = Beacon() { param iterations: 1; }
    stream<int64 a, int64 b> S1 = Custom(N) {
      logic onTuple N: { submit({ a = x * 2 + 1, b = y - x }, S1); }
    }
    stream<int64 a, int64 b> S2 = Filter(S1) { param filter: a % 3 == 0; }
    () as Out = FileSink(S2) { param file: "/dev/null"; }
}
`

// TestVMVecDifferentialFreshInteriorFilterTail runs random batches
// through the fused map|filter pipeline, scalar versus vectorized, and
// requires identical payloads AND identical tuple headers (Seq/Stamp)
// on every emitted row — the regression shape where the vectorized
// path used to forward the input tuple instead of the interior Fresh
// segment's template.
func TestVMVecDifferentialFreshInteriorFilterTail(t *testing.T) {
	fused := fusedDiffProgs(t, vecDiffFilterTailProgram, "S1", "S2")
	vp, err := vm.PlanVec(fused)
	if err != nil {
		t.Fatalf("map|filter pipeline did not vectorize: %v", err)
	}
	r := rand.New(rand.NewSource(20260808))
	for _, n := range []int{1, 7, 64, 200} {
		batch := make([]tuple.Tuple, n)
		for j := range batch {
			batch[j] = tuple.Tuple{Seq: uint64(j + 1), Stamp: 7, Ref: Tup{
				"x": r.Int63n(41) - 20,
				"y": r.Int63n(41) - 20,
			}}
		}
		var scalarOut []tuple.Tuple
		var sm vm.Machine
		sm.Reset(fused)
		for j := range batch {
			sm.Run(fused, batch[j], vm.EmitFunc(func(o tuple.Tuple) {
				scalarOut = append(scalarOut, o)
			}))
		}
		var vecOut []tuple.Tuple
		var bm vm.BatchMachine
		bm.Reset(vp)
		bm.Run(batch)
		bm.EmitRows(vm.EmitFunc(func(o tuple.Tuple) {
			vecOut = append(vecOut, o)
		}))
		if len(vecOut) != len(scalarOut) {
			t.Fatalf("n=%d: vectorized emitted %d rows, scalar %d", n, len(vecOut), len(scalarOut))
		}
		for j := range vecOut {
			v, s := vecOut[j], scalarOut[j]
			if v.Seq != s.Seq || v.Stamp != s.Stamp {
				t.Fatalf("n=%d row %d: header diverges: vec {Seq %d Stamp %d} scalar {Seq %d Stamp %d}",
					n, j, v.Seq, v.Stamp, s.Seq, s.Stamp)
			}
			vt, st := refTup(v.Ref), refTup(s.Ref)
			if !reflect.DeepEqual(vt, st) {
				t.Fatalf("n=%d row %d: payload diverges: vec %v scalar %v", n, j, vt, st)
			}
		}
		if got, want := bm.SegCounts(), sm.SegCounts(); !slicesEqualU64(got, want) {
			t.Fatalf("n=%d: seg counts diverge: vectorized %v scalar %v", n, got, want)
		}
	}
}

// TestVMDifferentialEdgeCases pins the known-sharp edges explicitly, so
// a generator drift can never silently drop them: integer division and
// modulo by zero, float division by zero (Inf and NaN, no panic),
// substring out of range and clamped, toInt parse failure, and the
// unfoldable spin call.
func TestVMDifferentialEdgeCases(t *testing.T) {
	in := Tup{"a": int64(0), "b": int64(7), "f": 0.0, "g": 0.0, "s": "abc", "t": "12x", "p": true, "q": false}
	cases := []Expr{
		&BinaryExpr{Op: SLASH, X: &IntLit{V: 1}, Y: &Ident{Name: "a"}},
		&BinaryExpr{Op: PERCENT, X: &Ident{Name: "b"}, Y: &Ident{Name: "a"}},
		&BinaryExpr{Op: SLASH, X: &FloatLit{V: 1}, Y: &Ident{Name: "g"}},
		&BinaryExpr{Op: SLASH, X: &Ident{Name: "f"}, Y: &Ident{Name: "g"}},
		&CallExpr{Name: "substring", Args: []Expr{&Ident{Name: "s"}, &IntLit{V: 1}, &IntLit{V: 100}}},
		&CallExpr{Name: "substring", Args: []Expr{&Ident{Name: "s"}, &IntLit{V: 5}, &IntLit{V: 1}}},
		&CallExpr{Name: "substring", Args: []Expr{&Ident{Name: "s"}, &IntLit{V: -1}, &IntLit{V: 1}}},
		&CallExpr{Name: "toInt", Args: []Expr{&Ident{Name: "t"}}},
		&CallExpr{Name: "toInt", Args: []Expr{&StringLit{V: "42"}}},
		&CallExpr{Name: "spin", Args: []Expr{&IntLit{V: 3}}},
		&BinaryExpr{Op: ANDAND, X: &Ident{Name: "q"}, Y: &BinaryExpr{Op: EQ, X: &BinaryExpr{Op: SLASH, X: &IntLit{V: 1}, Y: &Ident{Name: "a"}}, Y: &IntLit{V: 1}}},
	}
	for _, e := range cases {
		p := bindVM(compileExprVM(e, diffInType, "S"))
		if p == nil {
			t.Fatalf("VM rejected edge case: %s", exprStr(e))
		}
		diffOne(t, e, p, in)
	}
}
