package spl

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"streams/internal/tuple"
	"streams/internal/vm"
)

// Differential test between the two expression dispatch forms: the
// closure evaluator (eval in check.go) and the bytecode VM
// (compileExprVM + vm.Machine). On every expression the VM accepts, the
// two must agree exactly — same value, or a panic on both sides. The
// generator only produces constructs inside the VM's documented subset,
// so a compilation fall-back here is itself a bug.

// diffInType is the input tuple type the generated expressions range
// over: two attributes per scalar kind, so binary operators can mix
// attributes and literals of matching kinds.
var diffInType = TupleType{Fields: []TField{
	{Name: "a", Type: Int64},
	{Name: "b", Type: Int64},
	{Name: "f", Type: Float64},
	{Name: "g", Type: Float64},
	{Name: "s", Type: RString},
	{Name: "t", Type: RString},
	{Name: "p", Type: Boolean},
	{Name: "q", Type: Boolean},
}}

var diffFields = map[vm.Kind][]string{
	vm.KInt:   {"a", "b"},
	vm.KFloat: {"f", "g"},
	vm.KStr:   {"s", "t"},
	vm.KBool:  {"p", "q"},
}

// Literal pools. Zeros and short strings are deliberately common: they
// drive the error paths (division by zero, substring out of range,
// toInt parse failures) the two evaluators must agree on too.
var (
	diffInts    = []int64{-3, -1, 0, 0, 1, 2, 7, 100}
	diffFloats  = []float64{-2.5, -1, 0, 0, 0.5, 1, 3.75, 1e6}
	diffStrings = []string{"", "a", "abc", "héllo", "42", "-7", "3.5", "xyzzy"}
)

func diffLit(r *rand.Rand, k vm.Kind) Expr {
	switch k {
	case vm.KInt:
		return &IntLit{V: diffInts[r.Intn(len(diffInts))]}
	case vm.KFloat:
		return &FloatLit{V: diffFloats[r.Intn(len(diffFloats))]}
	case vm.KStr:
		return &StringLit{V: diffStrings[r.Intn(len(diffStrings))]}
	default:
		return &BoolLit{V: r.Intn(2) == 0}
	}
}

// diffLeaf is a literal, a bare attribute reference, or the
// stream-qualified spelling of the same attribute (S.x) — the three
// ways a value enters an expression.
func diffLeaf(r *rand.Rand, k vm.Kind) Expr {
	switch r.Intn(3) {
	case 0:
		return diffLit(r, k)
	case 1:
		return &Ident{Name: diffFields[k][r.Intn(2)]}
	default:
		return &AttrExpr{X: &Ident{Name: "S"}, Name: diffFields[k][r.Intn(2)]}
	}
}

// genExpr produces a random well-typed expression of VM kind k with at
// most depth levels of nesting, drawn from the full supported surface:
// typed arithmetic, comparisons, equality, short-circuit logic,
// conditionals, and the whitelisted builtins (including the panicking
// edges of substring and toInt, and the deliberately unfoldable spin).
func genExpr(r *rand.Rand, k vm.Kind, depth int) Expr {
	if depth <= 0 {
		return diffLeaf(r, k)
	}
	d := depth - 1
	switch k {
	case vm.KInt:
		switch r.Intn(7) {
		case 0:
			op := []Kind{PLUS, MINUS, STAR, SLASH, PERCENT}[r.Intn(5)]
			return &BinaryExpr{Op: op, X: genExpr(r, k, d), Y: genExpr(r, k, d)}
		case 1:
			return &UnaryExpr{Op: MINUS, X: genExpr(r, k, d)}
		case 2:
			return &CondExpr{C: genExpr(r, vm.KBool, d), T: genExpr(r, k, d), F: genExpr(r, k, d)}
		case 3:
			return &CallExpr{Name: "length", Args: []Expr{genExpr(r, vm.KStr, d)}}
		case 4:
			return &CallExpr{Name: "findFirst", Args: []Expr{genExpr(r, vm.KStr, d), genExpr(r, vm.KStr, d), genExpr(r, vm.KInt, d)}}
		case 5:
			return &CallExpr{Name: "toInt", Args: []Expr{genExpr(r, vm.KStr, d)}}
		default:
			return &BinaryExpr{Op: PLUS, X: genExpr(r, k, d), Y: genExpr(r, k, d)}
		}
	case vm.KFloat:
		switch r.Intn(6) {
		case 0:
			op := []Kind{PLUS, MINUS, STAR, SLASH}[r.Intn(4)]
			return &BinaryExpr{Op: op, X: genExpr(r, k, d), Y: genExpr(r, k, d)}
		case 1:
			return &UnaryExpr{Op: MINUS, X: genExpr(r, k, d)}
		case 2:
			return &CondExpr{C: genExpr(r, vm.KBool, d), T: genExpr(r, k, d), F: genExpr(r, k, d)}
		case 3:
			return &CallExpr{Name: "toFloat64", Args: []Expr{genExpr(r, vm.KInt, d)}}
		case 4:
			// spin burns real CPU: keep the argument a small literal.
			return &CallExpr{Name: "spin", Args: []Expr{&IntLit{V: r.Int63n(4)}}}
		default:
			return &CallExpr{Name: "toFloat64", Args: []Expr{genExpr(r, vm.KFloat, d)}}
		}
	case vm.KStr:
		switch r.Intn(6) {
		case 0:
			return &BinaryExpr{Op: PLUS, X: genExpr(r, k, d), Y: genExpr(r, k, d)}
		case 1:
			return &CondExpr{C: genExpr(r, vm.KBool, d), T: genExpr(r, k, d), F: genExpr(r, k, d)}
		case 2:
			name := []string{"lower", "upper"}[r.Intn(2)]
			return &CallExpr{Name: name, Args: []Expr{genExpr(r, k, d)}}
		case 3:
			return &CallExpr{Name: "substring", Args: []Expr{genExpr(r, vm.KStr, d), genExpr(r, vm.KInt, d), genExpr(r, vm.KInt, d)}}
		case 4:
			arg := []vm.Kind{vm.KInt, vm.KFloat, vm.KStr, vm.KBool}[r.Intn(4)]
			return &CallExpr{Name: "toString", Args: []Expr{genExpr(r, arg, d)}}
		default:
			return &BinaryExpr{Op: PLUS, X: genExpr(r, k, d), Y: genExpr(r, k, d)}
		}
	default: // bool
		switch r.Intn(6) {
		case 0:
			ok := []vm.Kind{vm.KInt, vm.KFloat, vm.KStr}[r.Intn(3)]
			op := []Kind{LANGLE, RANGLE, LEQ, GEQ}[r.Intn(4)]
			return &BinaryExpr{Op: op, X: genExpr(r, ok, d), Y: genExpr(r, ok, d)}
		case 1:
			ok := []vm.Kind{vm.KInt, vm.KFloat, vm.KStr, vm.KBool}[r.Intn(4)]
			op := []Kind{EQ, NEQ}[r.Intn(2)]
			return &BinaryExpr{Op: op, X: genExpr(r, ok, d), Y: genExpr(r, ok, d)}
		case 2:
			op := []Kind{ANDAND, OROR}[r.Intn(2)]
			return &BinaryExpr{Op: op, X: genExpr(r, k, d), Y: genExpr(r, k, d)}
		case 3:
			return &UnaryExpr{Op: NOT, X: genExpr(r, k, d)}
		case 4:
			return &CondExpr{C: genExpr(r, k, d), T: genExpr(r, k, d), F: genExpr(r, k, d)}
		default:
			return &UnaryExpr{Op: NOT, X: genExpr(r, k, d)}
		}
	}
}

func exprStr(e Expr) string {
	switch x := e.(type) {
	case *IntLit:
		return fmt.Sprint(x.V)
	case *FloatLit:
		return fmt.Sprintf("%g", x.V)
	case *StringLit:
		return fmt.Sprintf("%q", x.V)
	case *BoolLit:
		return fmt.Sprint(x.V)
	case *Ident:
		return x.Name
	case *AttrExpr:
		return exprStr(x.X) + "." + x.Name
	case *UnaryExpr:
		return fmt.Sprintf("(%v %s)", x.Op, exprStr(x.X))
	case *BinaryExpr:
		return fmt.Sprintf("(%s %v %s)", exprStr(x.X), x.Op, exprStr(x.Y))
	case *CondExpr:
		return fmt.Sprintf("(%s ? %s : %s)", exprStr(x.C), exprStr(x.T), exprStr(x.F))
	case *CallExpr:
		s := x.Name + "("
		for i, a := range x.Args {
			if i > 0 {
				s += ", "
			}
			s += exprStr(a)
		}
		return s + ")"
	default:
		return fmt.Sprintf("%T", e)
	}
}

func randTup(r *rand.Rand) Tup {
	return Tup{
		"a": diffInts[r.Intn(len(diffInts))],
		"b": diffInts[r.Intn(len(diffInts))],
		"f": diffFloats[r.Intn(len(diffFloats))],
		"g": diffFloats[r.Intn(len(diffFloats))],
		"s": diffStrings[r.Intn(len(diffStrings))],
		"t": diffStrings[r.Intn(len(diffStrings))],
		"p": r.Intn(2) == 0,
		"q": r.Intn(2) == 0,
	}
}

// runClosureExpr evaluates e in the closure evaluator over in.
func runClosureExpr(e Expr, in Tup) (out Value, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
		}
	}()
	env := newEnv(nil)
	for k, v := range in {
		env.vars[k] = v
	}
	env.vars["S"] = in
	return eval(e, env), false
}

// runVMExpr pushes in through the compiled program and reads back the
// single output attribute.
func runVMExpr(p *vm.Program, in Tup) (out Value, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
		}
	}()
	var m vm.Machine
	var got Tup
	m.Run(p, tuple.Tuple{Ref: in}, vm.EmitFunc(func(o tuple.Tuple) {
		got = o.Ref.(Tup)
	}))
	return got["r"], false
}

// sameValue compares two same-typed scalar results, treating NaN as
// equal to NaN (float division can produce it on both paths).
func sameValue(a, b Value) bool {
	if af, ok := a.(float64); ok {
		bf, ok := b.(float64)
		return ok && (af == bf || (math.IsNaN(af) && math.IsNaN(bf)))
	}
	return a == b
}

func diffOne(t *testing.T, e Expr, p *vm.Program, in Tup) (panicked bool) {
	t.Helper()
	cv, cp := runClosureExpr(e, in)
	vv, vp := runVMExpr(p, in)
	if cp != vp {
		t.Fatalf("panic disagreement on %s\ninput %v\nclosure panicked=%v, vm panicked=%v",
			exprStr(e), in, cp, vp)
	}
	if cp {
		return true
	}
	if !sameValue(cv, vv) {
		t.Fatalf("value disagreement on %s\ninput %v\nclosure %v (%T), vm %v (%T)",
			exprStr(e), in, cv, cv, vv, vv)
	}
	return false
}

// TestVMDifferentialRandomExprs is the property test: on a fixed seed,
// hundreds of random well-typed expressions, each executed on several
// random inputs, must agree between the two evaluators. The seed is
// fixed so failures reproduce; the final counters prove the sweep
// exercised both the value path and the panic path.
func TestVMDifferentialRandomExprs(t *testing.T) {
	r := rand.New(rand.NewSource(20260808))
	kinds := []vm.Kind{vm.KInt, vm.KFloat, vm.KStr, vm.KBool}
	values, panics := 0, 0
	for i := 0; i < 600; i++ {
		e := genExpr(r, kinds[r.Intn(len(kinds))], 1+r.Intn(3))
		p := bindVM(compileExprVM(e, diffInType, "S"))
		if p == nil {
			t.Fatalf("trial %d: VM rejected a generated expression: %s", i, exprStr(e))
		}
		for j := 0; j < 4; j++ {
			if diffOne(t, e, p, randTup(r)) {
				panics++
			} else {
				values++
			}
		}
	}
	if values == 0 || panics == 0 {
		t.Fatalf("sweep did not cover both outcomes: %d values, %d panics", values, panics)
	}
}

// TestVMDifferentialEdgeCases pins the known-sharp edges explicitly, so
// a generator drift can never silently drop them: integer division and
// modulo by zero, float division by zero (Inf and NaN, no panic),
// substring out of range and clamped, toInt parse failure, and the
// unfoldable spin call.
func TestVMDifferentialEdgeCases(t *testing.T) {
	in := Tup{"a": int64(0), "b": int64(7), "f": 0.0, "g": 0.0, "s": "abc", "t": "12x", "p": true, "q": false}
	cases := []Expr{
		&BinaryExpr{Op: SLASH, X: &IntLit{V: 1}, Y: &Ident{Name: "a"}},
		&BinaryExpr{Op: PERCENT, X: &Ident{Name: "b"}, Y: &Ident{Name: "a"}},
		&BinaryExpr{Op: SLASH, X: &FloatLit{V: 1}, Y: &Ident{Name: "g"}},
		&BinaryExpr{Op: SLASH, X: &Ident{Name: "f"}, Y: &Ident{Name: "g"}},
		&CallExpr{Name: "substring", Args: []Expr{&Ident{Name: "s"}, &IntLit{V: 1}, &IntLit{V: 100}}},
		&CallExpr{Name: "substring", Args: []Expr{&Ident{Name: "s"}, &IntLit{V: 5}, &IntLit{V: 1}}},
		&CallExpr{Name: "substring", Args: []Expr{&Ident{Name: "s"}, &IntLit{V: -1}, &IntLit{V: 1}}},
		&CallExpr{Name: "toInt", Args: []Expr{&Ident{Name: "t"}}},
		&CallExpr{Name: "toInt", Args: []Expr{&StringLit{V: "42"}}},
		&CallExpr{Name: "spin", Args: []Expr{&IntLit{V: 3}}},
		&BinaryExpr{Op: ANDAND, X: &Ident{Name: "q"}, Y: &BinaryExpr{Op: EQ, X: &BinaryExpr{Op: SLASH, X: &IntLit{V: 1}, Y: &Ident{Name: "a"}}, Y: &IntLit{V: 1}}},
	}
	for _, e := range cases {
		p := bindVM(compileExprVM(e, diffInType, "S"))
		if p == nil {
			t.Fatalf("VM rejected edge case: %s", exprStr(e))
		}
		diffOne(t, e, p, in)
	}
}
