package spl

// vec_vm.go is the compiler's vectorizability pass: the compile-time
// half of the decision the scheduler makes per batch at the fused
// commit point (sched.tryFused). The shape analysis itself — which
// programs *can* run batch-at-a-time — lives in vm.PlanVec and runs on
// the fused program; this pass tunes the per-program cutoff below
// which vectorizing is not worth the lane setup.
//
// The tuning signal is string-op density. Int and float lanes
// vectorize beautifully — the whole batch loop is a handful of
// machine instructions per row with no branches — but string ops
// (concatenation especially) allocate and chase pointers per row
// either way, so the batch form only amortizes its fixed costs over a
// larger batch. Programs whose instruction mix is string-heavy get a
// 4x higher cutoff; the scheduler compares len(batch) against
// Program.VecMinBatch (fused programs inherit the most conservative
// cutoff of their parts, see vm.Fuse).

import (
	"streams/internal/vm"
)

// vecStringHeavyCutoff is the minimum batch size for string-heavy
// programs; others use vm.DefaultVecMinBatch.
const vecStringHeavyCutoff = 4 * vm.DefaultVecMinBatch

// vecTune applies the vectorizability pass to a freshly bound program.
func vecTune(p *vm.Program) {
	strOps, total := 0, 0
	for _, in := range p.Code {
		switch in.Op {
		case vm.OpConstS, vm.OpCatS,
			vm.OpEqS, vm.OpNeS, vm.OpLtS, vm.OpLeS, vm.OpGtS, vm.OpGeS:
			strOps++
		case vm.OpNop, vm.OpEmit, vm.OpDrop, vm.OpJump, vm.OpJumpIfFalse, vm.OpJumpIfTrue:
			continue // control flow carries no per-row data work
		}
		total++
	}
	for _, f := range p.In.Fields {
		// String inputs count too: each decoded row copies a header
		// into its lane whether or not an opcode touches it.
		if f.Kind == vm.KStr {
			strOps++
		}
		total++
	}
	if total > 0 && strOps*4 >= total && strOps >= 2 {
		p.SetVecMinBatch(vecStringHeavyCutoff)
	}
}
