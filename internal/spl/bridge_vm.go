package spl

import (
	"streams/internal/tuple"
	"streams/internal/vm"
)

// This file is the value-model bridge between the SPL runtime (boxed
// Value / Tup maps) and the VM (unboxed Val lanes). Two pieces:
//
//   - the builtin registrations: every whitelisted signature in
//     vmBuiltinSigs wraps the SAME eval function the closure
//     interpreter calls, so the two paths agree on every edge case
//     (substring bounds panics, toInt leniency, spin's burn) by
//     construction rather than by re-implementation;
//   - tupCodec, which copies Tup payloads into slot windows and back.

func init() {
	for name, sigs := range vmBuiltinSigs {
		for _, sig := range sigs {
			mangled := name + ":" + sig.args
			vm.RegisterBuiltin(mangled, bridgeBuiltin(name, sig))
			// Every whitelisted builtin is a pure function of its
			// arguments except spin, whose deliberate CPU burn is a
			// side effect that is harmless to repeat — both classes
			// are vectorizable and replay-safe.
			eff := vm.EffectPure
			if name == "spin" {
				eff = vm.EffectReplay
			}
			vm.RegisterBuiltinInfo(mangled, eff, sig.ret)
		}
	}
}

// bridgeBuiltin wraps builtins[name].eval for one argument signature.
func bridgeBuiltin(name string, sig vmSig) vm.BuiltinFunc {
	eval := builtins[name].eval
	letters := sig.args
	ret := sig.ret
	return func(args []vm.Val) vm.Val {
		boxed := make([]Value, len(args))
		for i := range args {
			switch letters[i] {
			case 'i':
				boxed[i] = args[i].I
			case 'f':
				boxed[i] = args[i].F
			case 's':
				boxed[i] = args[i].S
			default:
				boxed[i] = args[i].I != 0
			}
		}
		return valFromValue(eval(Pos{}, boxed), ret)
	}
}

func valFromValue(v Value, k vm.Kind) vm.Val {
	switch k {
	case vm.KInt:
		return vm.Val{I: v.(int64)}
	case vm.KFloat:
		return vm.Val{F: v.(float64)}
	case vm.KStr:
		return vm.Val{S: v.(string)}
	default:
		if v.(bool) {
			return vm.Val{I: 1}
		}
		return vm.Val{}
	}
}

// tupCodec translates Tup payloads at program boundaries. Load runs
// once per input tuple; Store once per fresh emit. Inside a fused
// chain neither runs at interior hops — values stay in slots.
type tupCodec struct{}

func (tupCodec) Load(t *tuple.Tuple, in vm.Layout, slots []vm.Val) {
	if r, ok := t.Ref.(*Rec); ok {
		r.load(in, slots)
		return
	}
	tv := t.Ref.(Tup)
	for i, f := range in.Fields {
		switch f.Kind {
		case vm.KInt:
			slots[i] = vm.Val{I: tv[f.Name].(int64)}
		case vm.KFloat:
			slots[i] = vm.Val{F: tv[f.Name].(float64)}
		case vm.KStr:
			slots[i] = vm.Val{S: tv[f.Name].(string)}
		default:
			slots[i] = vm.Val{I: b2iVal(tv[f.Name].(bool))}
		}
	}
}

// NewBatchStore implements vm.BatchStorer: fresh emits pack into
// columnar frames (frame.go) instead of allocating a Tup per tuple.
func (tupCodec) NewBatchStore() vm.BatchStore { return &frameStore{} }

// refTup views a tuple payload as a Tup for closure-path consumers:
// Tup payloads pass through, Rec payloads (built by the VM emit path)
// materialize. Anything else panics with the same type-assertion error
// the closure path always raised.
func refTup(ref any) Tup {
	if r, ok := ref.(*Rec); ok {
		return r.Tup()
	}
	return ref.(Tup)
}

func (tupCodec) Store(slots []vm.Val, out vm.Layout) any {
	tv := make(Tup, len(out.Fields))
	for i, f := range out.Fields {
		switch f.Kind {
		case vm.KInt:
			tv[f.Name] = slots[i].I
		case vm.KFloat:
			tv[f.Name] = slots[i].F
		case vm.KStr:
			tv[f.Name] = slots[i].S
		default:
			tv[f.Name] = slots[i].I != 0
		}
	}
	return tv
}

func b2iVal(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// bindVM binds p to the Tup codec, returning nil (closure fallback)
// when binding fails — e.g. a builtin registration is missing. Bound
// programs also get the vectorizability pass (vec_vm.go) tuning their
// batch-size cutoff for the scheduler's vectorized commit point.
func bindVM(p *vm.Program) *vm.Program {
	if p == nil {
		return nil
	}
	if err := p.Bind(tupCodec{}); err != nil {
		return nil
	}
	vecTune(p)
	return p
}
