package spl

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"time"

	"streams/internal/graph"
	"streams/internal/ops"
	"streams/internal/tuple"
	"streams/internal/vm"
)

// Options controls compilation.
type Options struct {
	// Main names the main composite; empty selects "Main", or the only
	// composite when there is exactly one.
	Main string
	// ReaderFor opens FileSource inputs; nil uses os.Open.
	ReaderFor func(file string) (io.ReadCloser, error)
	// WriterFor opens FileSink outputs; nil uses os.Create. Returned
	// writers implementing io.Closer are closed at final punctuation.
	WriterFor func(file string) (io.WriteCloser, error)
	// NoVM disables bytecode compilation; every operator keeps its
	// closure evaluator. The scheduler's fused dispatch needs programs,
	// so this also forces chain batches through the per-operator path.
	NoVM bool
}

// Compiled is the result of compiling an SPL program: an executable
// stream graph plus the submission-time directives the source carried.
type Compiled struct {
	// Graph is the fused stream graph ("submission-time fusion" places
	// the whole program in one PE).
	Graph *graph.Graph
	// Threading is the @threading model ("", "manual", "dedicated" or
	// "dynamic").
	Threading string
	// Threads is the @threading threads=N argument (0 if absent).
	Threads int
	// Sinks maps each FileSink's alias to its operator, for counting and
	// test inspection.
	Sinks map[string]*FileSinkOp
}

// Compile parses, checks and lowers an SPL source file into a Compiled
// program.
func Compile(src string, opts Options) (*Compiled, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	lw := &lowerer{
		comps: map[string]*Composite{},
		b:     graph.NewBuilder(),
		opts:  opts,
		out:   &Compiled{Sinks: map[string]*FileSinkOp{}},
	}
	for _, c := range prog.Composites {
		if _, dup := lw.comps[c.Name]; dup {
			return nil, errf(c.Pos, "duplicate composite %q", c.Name)
		}
		lw.comps[c.Name] = c
	}
	main, err := lw.pickMain(prog)
	if err != nil {
		return nil, err
	}
	for _, ann := range main.Annotations {
		if ann.Name != "threading" {
			continue
		}
		switch m := ann.Args["model"]; m {
		case "manual", "dedicated", "dynamic":
			lw.out.Threading = m
		case "":
			return nil, errf(ann.Pos, "@threading requires a model argument")
		default:
			return nil, errf(ann.Pos, "unknown threading model %q", m)
		}
		if ts := ann.Args["threads"]; ts != "" {
			n, err := strconv.Atoi(ts)
			if err != nil || n < 1 {
				return nil, errf(ann.Pos, "bad @threading threads value %q", ts)
			}
			lw.out.Threads = n
		}
	}
	if len(main.Inputs) > 0 || len(main.Outputs) > 0 {
		return nil, errf(main.Pos, "main composite %q must not have input or output parameters", main.Name)
	}
	if _, err := lw.expand(main, main.Name, nil); err != nil {
		return nil, err
	}
	g, err := lw.b.Build()
	if err != nil {
		return nil, fmt.Errorf("spl: lowered graph invalid: %v", err)
	}
	lw.out.Graph = g
	return lw.out, nil
}

// streamRef is a stream during expansion: its tuple type and the
// (node, outPort) pairs producing it.
type streamRef struct {
	typ       TupleType
	producers []portRef
}

type portRef struct{ node, port int }

type lowerer struct {
	comps map[string]*Composite
	b     *graph.Builder
	opts  Options
	out   *Compiled
	depth int
	// paramVals caches constant-folded parameter expressions so each
	// source expression is evaluated exactly once per compilation, even
	// when an operator probes the same parameter at several types
	// (Throttle retries rate as int64 after float64 fails).
	paramVals map[*ParamAssign]Value
}

// paramEvalHook, when non-nil, observes each parameter-expression
// evaluation (by parameter name). Tests use it to pin down the
// evaluate-exactly-once guarantee of the fold cache.
var paramEvalHook func(name string)

func (lw *lowerer) pickMain(prog *Program) (*Composite, error) {
	name := lw.opts.Main
	if name == "" {
		if len(prog.Composites) == 1 {
			return prog.Composites[0], nil
		}
		name = "Main"
	}
	c, ok := lw.comps[name]
	if !ok {
		return nil, fmt.Errorf("spl: main composite %q not found", name)
	}
	return c, nil
}

// expand instantiates composite c with the given input streams (keyed by
// the composite's input parameter names) and returns its output streams
// (keyed by output parameter names). prefix scopes diagnostic names.
func (lw *lowerer) expand(c *Composite, prefix string, inputs map[string]*streamRef) (map[string]*streamRef, error) {
	if lw.depth++; lw.depth > 64 {
		return nil, errf(c.Pos, "composite expansion too deep (recursive composite %q?)", c.Name)
	}
	defer func() { lw.depth-- }()

	named := map[string]TupleType{}
	for _, td := range c.Types {
		if _, dup := named[td.Name]; dup {
			return nil, errf(td.Pos, "duplicate type %q", td.Name)
		}
		fields, err := resolveFields(td.Fields, named)
		if err != nil {
			return nil, err
		}
		named[td.Name] = TupleType{Fields: fields}
	}
	streams := map[string]*streamRef{}
	for name, ref := range inputs {
		streams[name] = ref
	}

	for _, inv := range c.Invocations {
		if streams[inv.OutStream] != nil {
			return nil, errf(inv.Pos, "stream %q already declared", inv.OutStream)
		}
		// Resolve the input port groups to stream refs.
		inPorts := make([]*streamRef, len(inv.Inputs))
		for p, group := range inv.Inputs {
			merged := &streamRef{}
			for _, name := range group {
				ref, ok := streams[name]
				if !ok {
					return nil, errf(inv.Pos, "unknown input stream %q (streams must be declared before use)", name)
				}
				if len(merged.producers) == 0 {
					merged.typ = ref.typ
				} else if !merged.typ.equal(ref.typ) {
					return nil, errf(inv.Pos, "streams fanning into port %d have different types %s and %s", p, merged.typ, ref.typ)
				}
				merged.producers = append(merged.producers, ref.producers...)
			}
			inPorts[p] = merged
		}

		var outRef *streamRef
		var err error
		if child, isComposite := lw.comps[inv.OpName]; isComposite {
			outRef, err = lw.invokeComposite(inv, child, prefix, inPorts, named)
		} else {
			outRef, err = lw.invokeOperator(inv, prefix, inPorts, named)
		}
		if err != nil {
			return nil, err
		}
		if inv.OutStream != "" {
			if outRef == nil {
				return nil, errf(inv.Pos, "%s produces no stream but one was declared", inv.OpName)
			}
			streams[inv.OutStream] = outRef
		}
	}

	outs := map[string]*streamRef{}
	for _, name := range c.Outputs {
		ref, ok := streams[name]
		if !ok {
			return nil, errf(c.Pos, "composite %q never declares its output stream %q", c.Name, name)
		}
		outs[name] = ref
	}
	return outs, nil
}

// invokeComposite expands a composite invocation.
func (lw *lowerer) invokeComposite(inv *Invocation, child *Composite, prefix string, inPorts []*streamRef, named map[string]TupleType) (*streamRef, error) {
	if len(inv.Annotations) > 0 {
		for _, ann := range inv.Annotations {
			if ann.Name == "parallel" {
				return nil, errf(ann.Pos, "@parallel on composite invocations is not supported")
			}
		}
	}
	if len(inPorts) != len(child.Inputs) {
		return nil, errf(inv.Pos, "composite %q takes %d input streams, got %d", child.Name, len(child.Inputs), len(inPorts))
	}
	childIns := map[string]*streamRef{}
	for i, name := range child.Inputs {
		childIns[name] = inPorts[i]
	}
	outs, err := lw.expand(child, prefix+"/"+inv.Name(), childIns)
	if err != nil {
		return nil, err
	}
	switch {
	case inv.OutStream == "" && len(child.Outputs) == 0:
		return nil, nil
	case inv.OutStream != "" && len(child.Outputs) == 1:
		ref := outs[child.Outputs[0]]
		// The declared stream type may reference a type private to the
		// child (as the paper's Main does with Failure); accept it when
		// it does not resolve here, otherwise require a match.
		if inv.OutType != nil {
			if want, err := resolveType(inv.OutType, named); err == nil {
				if !want.equal(ref.typ) {
					return nil, errf(inv.Pos, "declared type %s does not match composite output type %s", want, ref.typ)
				}
			}
		}
		return ref, nil
	default:
		return nil, errf(inv.Pos, "composite %q has %d outputs; invocation declares %d", child.Name, len(child.Outputs), boolToInt(inv.OutStream != ""))
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// paramMap indexes an invocation's parameters by name.
func paramMap(inv *Invocation) map[string]*ParamAssign {
	m := map[string]*ParamAssign{}
	for _, p := range inv.Params {
		m[p.Name] = p
	}
	return m
}

// parallelWidth extracts the @parallel width (1 when absent).
func parallelWidth(inv *Invocation) (int, error) {
	for _, ann := range inv.Annotations {
		if ann.Name != "parallel" {
			continue
		}
		w, err := strconv.Atoi(ann.Args["width"])
		if err != nil || w < 1 {
			return 0, errf(ann.Pos, "@parallel requires a positive integer width, got %q", ann.Args["width"])
		}
		return w, nil
	}
	return 1, nil
}

// invokeOperator lowers one builtin operator invocation, replicating it
// under @parallel.
func (lw *lowerer) invokeOperator(inv *Invocation, prefix string, inPorts []*streamRef, named map[string]TupleType) (*streamRef, error) {
	width, err := parallelWidth(inv)
	if err != nil {
		return nil, err
	}
	params := paramMap(inv)
	name := prefix + "/" + inv.Name()

	// Factory builds one replica; outType nil for sinks.
	var outType *TupleType
	if inv.OutType != nil {
		t, err := resolveType(inv.OutType, named)
		if err != nil {
			return nil, err
		}
		tt, ok := t.(TupleType)
		if !ok {
			return nil, errf(inv.OutType.Pos, "stream type must be a tuple type, got %s", t)
		}
		outType = &tt
	}

	factory, numIn, numOut, err := lw.operatorFactory(inv, name, params, inPorts, outType, named)
	if err != nil {
		return nil, err
	}

	if width == 1 {
		node := lw.b.AddNode(factory(0), numIn, numOut)
		for p, ref := range inPorts {
			for _, pr := range ref.producers {
				lw.b.Connect(pr.node, pr.port, node, p)
			}
		}
		if numOut == 0 {
			return nil, nil
		}
		return &streamRef{typ: *outType, producers: []portRef{{node, 0}}}, nil
	}

	// @parallel: split the (single) input port round-robin across width
	// replicas; the output stream is produced by every replica (ordered
	// per replica stream, exactly SPL's parallel-region semantics).
	if numIn != 1 {
		return nil, errf(inv.Pos, "@parallel requires exactly one input port, got %d", numIn)
	}
	split := lw.b.AddNode(&ops.RoundRobinSplit{OpName: name + "/split", Width: width}, 1, width)
	for _, pr := range inPorts[0].producers {
		lw.b.Connect(pr.node, pr.port, split, 0)
	}
	ref := &streamRef{}
	if outType != nil {
		ref.typ = *outType
	}
	for w := 0; w < width; w++ {
		node := lw.b.AddNode(factory(w), 1, numOut)
		lw.b.Connect(split, w, node, 0)
		if numOut > 0 {
			ref.producers = append(ref.producers, portRef{node, 0})
		}
	}
	if numOut == 0 {
		return nil, nil
	}
	return ref, nil
}

// operatorFactory type-checks one builtin invocation and returns a
// replica factory plus the operator's port counts.
func (lw *lowerer) operatorFactory(inv *Invocation, name string, params map[string]*ParamAssign, inPorts []*streamRef, outType *TupleType, named map[string]TupleType) (func(replica int) graph.Operator, int, int, error) {
	requireParams := func(known ...string) error {
		ok := map[string]bool{}
		for _, k := range known {
			ok[k] = true
		}
		for pname, p := range params {
			if !ok[pname] {
				return errf(p.Pos, "%s has no parameter %q", inv.OpName, pname)
			}
		}
		return nil
	}
	constParam := func(pname string, want Type) (Value, error) {
		p, okp := params[pname]
		if !okp {
			return nil, nil
		}
		v, cached := lw.paramVals[p]
		if !cached {
			if paramEvalHook != nil {
				paramEvalHook(pname)
			}
			var err error
			v, err = constEval(p.Expr)
			if err != nil {
				return nil, errf(p.Pos, "parameter %q: %v", pname, err)
			}
			// Cache before the type check: a retry at a different
			// expected type (Throttle's float64-then-int64 rate) must
			// not re-evaluate the expression.
			if lw.paramVals == nil {
				lw.paramVals = map[*ParamAssign]Value{}
			}
			lw.paramVals[p] = v
		}
		got := typeOfValue(v)
		if !assignable(want, got) {
			return nil, errf(p.Pos, "parameter %q has type %s, want %s", pname, got, want)
		}
		return v, nil
	}

	switch inv.OpName {
	case "Beacon":
		if len(inPorts) != 0 {
			return nil, 0, 0, errf(inv.Pos, "Beacon takes no input streams")
		}
		if outType == nil {
			return nil, 0, 0, errf(inv.Pos, "Beacon must declare an output stream")
		}
		if err := requireParams("iterations"); err != nil {
			return nil, 0, 0, err
		}
		var iters int64
		if v, err := constParam("iterations", Int64); err != nil {
			return nil, 0, 0, err
		} else if v != nil {
			iters = v.(int64)
		}
		return func(int) graph.Operator {
			return &beaconOp{name: name, typ: *outType, iterations: iters}
		}, 0, 1, nil

	case "FileSource":
		if len(inPorts) != 0 {
			return nil, 0, 0, errf(inv.Pos, "FileSource takes no input streams")
		}
		if outType == nil || len(outType.Fields) != 1 || !outType.Fields[0].Type.equal(RString) {
			return nil, 0, 0, errf(inv.Pos, "FileSource output type must have exactly one rstring attribute")
		}
		if err := requireParams("file", "format"); err != nil {
			return nil, 0, 0, err
		}
		if p, ok := params["format"]; ok {
			id, isIdent := p.Expr.(*Ident)
			if !isIdent || id.Name != "line" {
				return nil, 0, 0, errf(p.Pos, "FileSource supports only format: line")
			}
		}
		fv, err := constParam("file", RString)
		if err != nil {
			return nil, 0, 0, err
		}
		if fv == nil {
			return nil, 0, 0, errf(inv.Pos, "FileSource requires a file parameter")
		}
		attr := outType.Fields[0].Name
		open := lw.opts.ReaderFor
		if open == nil {
			open = func(f string) (io.ReadCloser, error) { return os.Open(f) }
		}
		return func(int) graph.Operator {
			return &fileSourceOp{name: name, file: fv.(string), attr: attr, open: open}
		}, 0, 1, nil

	case "Custom":
		if err := requireParams(); err != nil {
			return nil, 0, 0, err
		}
		if len(inPorts) == 0 {
			return nil, 0, 0, errf(inv.Pos, "Custom requires at least one input stream")
		}
		numOut := 0
		outs := map[string]TupleType{}
		if outType != nil {
			numOut = 1
			outs[inv.OutStream] = *outType
		}
		// The state clause declares variables that persist across tuples
		// (and across input ports of the same operator instance). State
		// initializers cannot see tuple attributes.
		stateScope := newScope(nil)
		if inv.State != nil {
			for _, st := range inv.State.Stmts {
				if _, ok := st.(*DeclStmt); !ok {
					return nil, 0, 0, errf(st.P(), "state clauses may only contain declarations")
				}
			}
			if err := checkBlock(inv.State, stateScope, &blockCtx{named: named, outs: map[string]TupleType{}}); err != nil {
				return nil, 0, 0, err
			}
		}
		blocks := make([]*Block, len(inPorts))
		for p, group := range inv.Inputs {
			if len(group) != 1 {
				return nil, 0, 0, errf(inv.Pos, "Custom ports must be fed by exactly one stream (logic is named per stream)")
			}
			blk, ok := inv.Logic[group[0]]
			if !ok {
				continue // no logic for this port: tuples are dropped
			}
			sc := newScope(stateScope)
			for _, f := range inPorts[p].typ.Fields {
				sc.vars[f.Name] = f.Type
			}
			sc.vars[group[0]] = inPorts[p].typ
			if err := checkBlock(blk, newScope(sc), &blockCtx{named: named, outs: outs}); err != nil {
				return nil, 0, 0, err
			}
			blocks[p] = blk
		}
		for stream := range inv.Logic {
			found := false
			for _, group := range inv.Inputs {
				if group[0] == stream {
					found = true
				}
			}
			if !found {
				return nil, 0, 0, errf(inv.Pos, "onTuple %s does not name an input stream", stream)
			}
		}
		inTypes := make([]TupleType, len(inPorts))
		inNames := make([]string, len(inPorts))
		for p := range inPorts {
			inTypes[p] = inPorts[p].typ
			inNames[p] = inv.Inputs[p][0]
		}
		var ot TupleType
		if outType != nil {
			ot = *outType
		}
		stateBlock := inv.State
		// Stateless single-in single-out Custom operators compile to
		// bytecode; anything else (state, multi-port, dropped output)
		// keeps the interpreter.
		var prog *vm.Program
		if !lw.opts.NoVM && stateBlock == nil && len(inPorts) == 1 && outType != nil && blocks[0] != nil {
			prog = bindVM(compileCustomVM(name, blocks[0], inTypes[0], inNames[0], ot, inv.OutStream))
		}
		return func(int) graph.Operator {
			op := &customOp{name: name, blocks: blocks, inTypes: inTypes, inNames: inNames, outType: ot, hasOut: outType != nil, prog: prog}
			if stateBlock != nil {
				// Each replica owns its state, initialized once here.
				op.state = newEnv(nil)
				execBlock(stateBlock, op.state, func(string, Tup) {})
			}
			return op
		}, len(inPorts), numOut, nil

	case "Filter":
		if len(inPorts) != 1 {
			return nil, 0, 0, errf(inv.Pos, "Filter takes exactly one input stream")
		}
		if outType == nil {
			return nil, 0, 0, errf(inv.Pos, "Filter must declare an output stream")
		}
		if !outType.equal(inPorts[0].typ) {
			return nil, 0, 0, errf(inv.Pos, "Filter output type %s must equal its input type %s", *outType, inPorts[0].typ)
		}
		if err := requireParams("filter"); err != nil {
			return nil, 0, 0, err
		}
		p, ok := params["filter"]
		if !ok {
			return nil, 0, 0, errf(inv.Pos, "Filter requires a filter parameter")
		}
		sc := newScope(nil)
		for _, f := range inPorts[0].typ.Fields {
			sc.vars[f.Name] = f.Type
		}
		t, err := checkExpr(p.Expr, sc)
		if err != nil {
			return nil, 0, 0, err
		}
		if !t.equal(Boolean) {
			return nil, 0, 0, errf(p.Pos, "filter expression has type %s, want boolean", t)
		}
		var prog *vm.Program
		if !lw.opts.NoVM {
			prog = bindVM(compileFilterVM(name, p.Expr, inPorts[0].typ))
		}
		return func(int) graph.Operator {
			return &filterOp{name: name, pred: p.Expr, prog: prog}
		}, 1, 1, nil

	case "Work":
		if len(inPorts) != 1 {
			return nil, 0, 0, errf(inv.Pos, "Work takes exactly one input stream")
		}
		if outType == nil || !outType.equal(inPorts[0].typ) {
			return nil, 0, 0, errf(inv.Pos, "Work forwards its input; output type must equal input type")
		}
		if err := requireParams("cost"); err != nil {
			return nil, 0, 0, err
		}
		var cost int64
		if v, err := constParam("cost", Int64); err != nil {
			return nil, 0, 0, err
		} else if v != nil {
			cost = v.(int64)
		}
		var wprog *vm.Program
		if !lw.opts.NoVM {
			wprog = bindVM(compileWorkVM(name, int(cost), inPorts[0].typ))
		}
		return func(int) graph.Operator {
			return &workOp{name: name, cost: int(cost), prog: wprog}
		}, 1, 1, nil

	case "Aggregate":
		if len(inPorts) != 1 {
			return nil, 0, 0, errf(inv.Pos, "Aggregate takes exactly one input stream")
		}
		if outType == nil || len(outType.Fields) != 1 {
			return nil, 0, 0, errf(inv.Pos, "Aggregate output type must have exactly one attribute")
		}
		if err := requireParams("count", "function", "attr"); err != nil {
			return nil, 0, 0, err
		}
		cv, err := constParam("count", Int64)
		if err != nil {
			return nil, 0, 0, err
		}
		if cv == nil || cv.(int64) < 1 {
			return nil, 0, 0, errf(inv.Pos, "Aggregate requires a positive count parameter")
		}
		fnName := "sum"
		if fp, ok := params["function"]; ok {
			id, isIdent := fp.Expr.(*Ident)
			if !isIdent {
				return nil, 0, 0, errf(fp.Pos, "Aggregate function must be one of sum, min, max, avg, count")
			}
			fnName = id.Name
		}
		switch fnName {
		case "sum", "min", "max", "avg", "count":
		default:
			return nil, 0, 0, errf(inv.Pos, "unknown Aggregate function %q (sum, min, max, avg, count)", fnName)
		}
		attr := ""
		var attrType Type
		if ap, ok := params["attr"]; ok {
			id, isIdent := ap.Expr.(*Ident)
			if !isIdent {
				return nil, 0, 0, errf(ap.Pos, "Aggregate attr must be an attribute name")
			}
			attr = id.Name
			at, ok := inPorts[0].typ.Field(attr)
			if !ok {
				return nil, 0, 0, errf(ap.Pos, "input type %s has no attribute %q", inPorts[0].typ, attr)
			}
			if !isInt(at) && !at.equal(Float64) {
				return nil, 0, 0, errf(ap.Pos, "Aggregate attr %q has type %s, want a number", attr, at)
			}
			attrType = at
		}
		if fnName != "count" && attr == "" {
			return nil, 0, 0, errf(inv.Pos, "Aggregate function %s requires an attr parameter", fnName)
		}
		// Result type: count → int64; avg → float64; sum/min/max follow
		// the attribute type.
		var resType Type
		switch fnName {
		case "count":
			resType = Int64
		case "avg":
			resType = Float64
		default:
			if isInt(attrType) {
				resType = Int64
			} else {
				resType = Float64
			}
		}
		outField := outType.Fields[0]
		if !assignable(outField.Type, resType) {
			return nil, 0, 0, errf(inv.Pos, "Aggregate %s over %s produces %s; output attribute %q has type %s",
				fnName, attr, resType, outField.Name, outField.Type)
		}
		return func(int) graph.Operator {
			return &aggregateOp{
				name: name, window: cv.(int64), fn: fnName,
				attr: attr, outAttr: outField.Name, floatOut: resType.equal(Float64),
			}
		}, 1, 1, nil

	case "FileSink":
		if len(inPorts) != 1 {
			return nil, 0, 0, errf(inv.Pos, "FileSink takes exactly one input stream")
		}
		if outType != nil {
			return nil, 0, 0, errf(inv.Pos, "FileSink produces no stream; use '() as Name = FileSink(...)'")
		}
		if err := requireParams("file"); err != nil {
			return nil, 0, 0, err
		}
		fv, err := constParam("file", RString)
		if err != nil {
			return nil, 0, 0, err
		}
		if fv == nil {
			return nil, 0, 0, errf(inv.Pos, "FileSink requires a file parameter")
		}
		open := lw.opts.WriterFor
		if open == nil {
			open = func(f string) (io.WriteCloser, error) { return os.Create(f) }
		}
		sink := &FileSinkOp{name: name, file: fv.(string), typ: inPorts[0].typ, open: open}
		lw.out.Sinks[inv.Name()] = sink
		return func(int) graph.Operator { return sink }, 1, 0, nil

	case "Throttle":
		if len(inPorts) != 1 {
			return nil, 0, 0, errf(inv.Pos, "Throttle takes exactly one input stream")
		}
		if outType == nil || !outType.equal(inPorts[0].typ) {
			return nil, 0, 0, errf(inv.Pos, "Throttle forwards its input; output type must equal input type")
		}
		if err := requireParams("rate"); err != nil {
			return nil, 0, 0, err
		}
		rv, err := constParam("rate", Float64)
		if err != nil {
			// Integer rates are convenient; retry as int64.
			rv, err = constParam("rate", Int64)
			if err != nil {
				return nil, 0, 0, err
			}
			if rv != nil {
				rv = float64(rv.(int64))
			}
		}
		if rv == nil {
			return nil, 0, 0, errf(inv.Pos, "Throttle requires a rate parameter (tuples per second)")
		}
		rate := rv.(float64)
		if rate <= 0 {
			return nil, 0, 0, errf(inv.Pos, "Throttle rate must be positive, got %g", rate)
		}
		return func(int) graph.Operator {
			return &throttleOp{name: name, interval: time.Duration(float64(time.Second) / rate)}
		}, 1, 1, nil

	case "Punctor":
		if len(inPorts) != 1 {
			return nil, 0, 0, errf(inv.Pos, "Punctor takes exactly one input stream")
		}
		if outType == nil || !outType.equal(inPorts[0].typ) {
			return nil, 0, 0, errf(inv.Pos, "Punctor forwards its input; output type must equal input type")
		}
		if err := requireParams("count"); err != nil {
			return nil, 0, 0, err
		}
		cv, err := constParam("count", Int64)
		if err != nil {
			return nil, 0, 0, err
		}
		if cv == nil || cv.(int64) < 1 {
			return nil, 0, 0, errf(inv.Pos, "Punctor requires a positive count parameter")
		}
		return func(int) graph.Operator {
			return &punctorOp{name: name, every: cv.(int64)}
		}, 1, 1, nil

	case "DeDuplicate":
		if len(inPorts) != 1 {
			return nil, 0, 0, errf(inv.Pos, "DeDuplicate takes exactly one input stream")
		}
		if outType == nil || !outType.equal(inPorts[0].typ) {
			return nil, 0, 0, errf(inv.Pos, "DeDuplicate forwards its input; output type must equal input type")
		}
		if err := requireParams("key"); err != nil {
			return nil, 0, 0, err
		}
		kp, ok := params["key"]
		if !ok {
			return nil, 0, 0, errf(inv.Pos, "DeDuplicate requires a key parameter naming an attribute")
		}
		kid, isIdent := kp.Expr.(*Ident)
		if !isIdent {
			return nil, 0, 0, errf(kp.Pos, "DeDuplicate key must be an attribute name")
		}
		if _, ok := inPorts[0].typ.Field(kid.Name); !ok {
			return nil, 0, 0, errf(kp.Pos, "input type %s has no attribute %q", inPorts[0].typ, kid.Name)
		}
		return func(int) graph.Operator {
			return &dedupOp{name: name, key: kid.Name}
		}, 1, 1, nil

	default:
		return nil, 0, 0, errf(inv.Pos, "unknown operator %q (builtins: Beacon, FileSource, Custom, Filter, Work, Aggregate, Throttle, Punctor, DeDuplicate, FileSink)", inv.OpName)
	}
}

// typeOfValue maps a runtime constant back to its type (for parameter
// checking).
func typeOfValue(v Value) Type {
	switch x := v.(type) {
	case bool:
		return Boolean
	case int64:
		return Int64
	case float64:
		return Float64
	case string:
		return RString
	case []Value:
		if len(x) == 0 {
			return ListType{Elem: RString}
		}
		return ListType{Elem: typeOfValue(x[0])}
	default:
		return RString
	}
}

// ----- SPL runtime operators -----

// beaconOp generates `iterations` tuples (0 = unbounded) whose integer
// attributes carry the sequence number.
type beaconOp struct {
	name       string
	typ        TupleType
	iterations int64
}

// Name implements graph.Operator.
func (b *beaconOp) Name() string { return b.name }

// Process implements graph.Operator; sources receive no input.
func (b *beaconOp) Process(graph.Submitter, tuple.Tuple, int) {}

// Run implements graph.Source.
func (b *beaconOp) Run(out graph.Submitter, stop <-chan struct{}) {
	for i := int64(0); b.iterations == 0 || i < b.iterations; i++ {
		select {
		case <-stop:
			return
		default:
		}
		tv := Tup{}
		for _, f := range b.typ.Fields {
			if isInt(f.Type) {
				tv[f.Name] = i
			} else {
				tv[f.Name] = zeroValue(f.Type)
			}
		}
		out.Submit(tuple.Tuple{Ref: tv}, 0)
	}
}

// fileSourceOp emits one single-attribute tuple per input line.
type fileSourceOp struct {
	name string
	file string
	attr string
	open func(string) (io.ReadCloser, error)
}

// Name implements graph.Operator.
func (f *fileSourceOp) Name() string { return f.name }

// Process implements graph.Operator; sources receive no input.
func (f *fileSourceOp) Process(graph.Submitter, tuple.Tuple, int) {}

// Run implements graph.Source.
func (f *fileSourceOp) Run(out graph.Submitter, stop <-chan struct{}) {
	r, err := f.open(f.file)
	if err != nil {
		panic(rtErrf(Pos{}, "FileSource %s: %v", f.name, err))
	}
	defer r.Close()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		select {
		case <-stop:
			return
		default:
		}
		out.Submit(tuple.Tuple{Ref: Tup{f.attr: sc.Text()}}, 0)
	}
}

// customOp interprets onTuple logic blocks. Operators with a state
// clause keep a persistent environment; it is mutex-protected because
// under the dynamic model different threads execute the operator over
// time (and concurrently, for multi-port operators).
type customOp struct {
	name    string
	blocks  []*Block
	inTypes []TupleType
	inNames []string
	outType TupleType
	hasOut  bool

	// prog, when non-nil, is the bytecode form of the (stateless,
	// single-port) onTuple block; Process runs it instead of the
	// interpreter. mach/emit are reused across tuples — per-port
	// consumer locks serialize Process, so no further locking.
	prog *vm.Program
	mach vm.Machine
	emit submitEmitter

	stateMu sync.Mutex
	state   *renv
}

// submitEmitter adapts graph.Submitter to vm.Emitter on output port 0.
// Each operator instance keeps one and rebinds its target per Process
// call, so the hot path allocates no closure.
type submitEmitter struct{ out graph.Submitter }

// Emit implements vm.Emitter.
func (e *submitEmitter) Emit(t tuple.Tuple) { e.out.Submit(t, 0) }

// Name implements graph.Operator.
func (c *customOp) Name() string { return c.name }

// VMProgram implements vm.Programmed.
func (c *customOp) VMProgram() *vm.Program { return c.prog }

// Process implements graph.Operator.
func (c *customOp) Process(out graph.Submitter, t tuple.Tuple, inPort int) {
	if c.prog != nil {
		c.emit.out = out
		c.mach.Run(c.prog, t, &c.emit)
		c.emit.out = nil
		return
	}
	blk := c.blocks[inPort]
	if blk == nil {
		return
	}
	tv := refTup(t.Ref)
	var env *renv
	if c.state != nil {
		c.stateMu.Lock()
		defer c.stateMu.Unlock()
		env = newEnv(c.state)
	} else {
		env = newEnv(nil)
	}
	for _, f := range c.inTypes[inPort].Fields {
		env.vars[f.Name] = tv[f.Name]
	}
	env.vars[c.inNames[inPort]] = tv
	execBlock(blk, newEnv(env), func(_ string, res Tup) {
		// The checker guarantees the stream name; fill unassigned
		// attributes with their zero values.
		for _, f := range c.outType.Fields {
			if _, ok := res[f.Name]; !ok {
				res[f.Name] = zeroValue(f.Type)
			}
		}
		out.Submit(tuple.Tuple{Ref: res}, 0)
	})
}

// filterOp forwards tuples passing a checked boolean predicate.
type filterOp struct {
	name string
	pred Expr
	prog *vm.Program
	mach vm.Machine
	emit submitEmitter
}

// Name implements graph.Operator.
func (f *filterOp) Name() string { return f.name }

// VMProgram implements vm.Programmed.
func (f *filterOp) VMProgram() *vm.Program { return f.prog }

// Process implements graph.Operator.
func (f *filterOp) Process(out graph.Submitter, t tuple.Tuple, _ int) {
	if f.prog != nil {
		f.emit.out = out
		f.mach.Run(f.prog, t, &f.emit)
		f.emit.out = nil
		return
	}
	tv := refTup(t.Ref)
	env := newEnv(nil)
	for k, v := range tv {
		env.vars[k] = v
	}
	if eval(f.pred, env).(bool) {
		out.Submit(t, 0)
	}
}

// workOp burns a fixed flop cost per tuple and forwards it — the SPL
// surface for the paper's synthetic workloads.
type workOp struct {
	name string
	cost int
	// prog exists for fusion only: a bytecode spin-and-forward is no
	// faster than the direct call below, so unfused dispatch keeps the
	// closure path, but a chain can absorb this operator as a segment.
	prog *vm.Program
}

// Name implements graph.Operator.
func (w *workOp) Name() string { return w.name }

// VMProgram implements vm.Programmed.
func (w *workOp) VMProgram() *vm.Program { return w.prog }

// Process implements graph.Operator.
func (w *workOp) Process(out graph.Submitter, t tuple.Tuple, _ int) {
	if w.cost > 0 {
		ops.Spin(w.cost/2, t.Seq)
	}
	out.Submit(t, 0)
}

// FileSinkOp writes each tuple as one comma-separated line. Its local
// state is lock-protected exactly like the paper's Snk operator, because
// under the dynamic model different threads may execute it over time.
type FileSinkOp struct {
	name string
	file string
	typ  TupleType
	open func(string) (io.WriteCloser, error)

	mu    sync.Mutex
	w     io.WriteCloser
	bw    *bufio.Writer
	count uint64
	fail  error
}

// Name implements graph.Operator.
func (s *FileSinkOp) Name() string { return s.name }

// File returns the configured output path.
func (s *FileSinkOp) File() string { return s.file }

// Count returns the number of tuples written.
func (s *FileSinkOp) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Err returns the first write error, if any.
func (s *FileSinkOp) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fail
}

// Process implements graph.Operator.
func (s *FileSinkOp) Process(_ graph.Submitter, t tuple.Tuple, _ int) {
	tv := refTup(t.Ref)
	line := formatTuple(tv, s.typ)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail != nil {
		return
	}
	if s.w == nil {
		w, err := s.open(s.file)
		if err != nil {
			s.fail = err
			return
		}
		s.w = w
		s.bw = bufio.NewWriter(w)
	}
	if _, err := s.bw.WriteString(line + "\n"); err != nil {
		s.fail = err
		return
	}
	s.count++
}

// Finish implements sched.Finalizer: flush and close at final
// punctuation.
func (s *FileSinkOp) Finish(graph.Submitter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bw != nil {
		if err := s.bw.Flush(); err != nil && s.fail == nil {
			s.fail = err
		}
	}
	if s.w != nil {
		if err := s.w.Close(); err != nil && s.fail == nil {
			s.fail = err
		}
		s.w, s.bw = nil, nil
	}
}

// throttleOp paces a stream to a fixed rate, sleeping between forwards —
// SPL's Throttle.
type throttleOp struct {
	name     string
	interval time.Duration

	mu   sync.Mutex
	next time.Time
}

// Name implements graph.Operator.
func (o *throttleOp) Name() string { return o.name }

// Process implements graph.Operator.
func (o *throttleOp) Process(out graph.Submitter, t tuple.Tuple, _ int) {
	o.mu.Lock()
	now := time.Now()
	if o.next.After(now) {
		wait := o.next.Sub(now)
		o.next = o.next.Add(o.interval)
		o.mu.Unlock()
		time.Sleep(wait)
	} else {
		o.next = now.Add(o.interval)
		o.mu.Unlock()
	}
	out.Submit(t, 0)
}

// punctorOp forwards tuples and emits a window punctuation after every
// `every` tuples — a simplified SPL Punctor.
type punctorOp struct {
	name  string
	every int64

	mu sync.Mutex
	n  int64
}

// Name implements graph.Operator.
func (o *punctorOp) Name() string { return o.name }

// Process implements graph.Operator.
func (o *punctorOp) Process(out graph.Submitter, t tuple.Tuple, _ int) {
	out.Submit(t, 0)
	o.mu.Lock()
	o.n++
	fire := o.n%o.every == 0
	o.mu.Unlock()
	if fire {
		out.Submit(tuple.Window(), 0)
	}
}

// aggregateOp computes one aggregate value per count-based window —
// SPL's Aggregate with a tumbling count window. A partial window is
// flushed when the input stream closes (Finish), and a window
// punctuation follows every aggregate, as SPL windows emit.
type aggregateOp struct {
	name     string
	window   int64
	fn       string
	attr     string
	outAttr  string
	floatOut bool

	mu   sync.Mutex
	n    int64
	sumI int64
	sumF float64
	minI int64
	maxI int64
	minF float64
	maxF float64
}

// Name implements graph.Operator.
func (o *aggregateOp) Name() string { return o.name }

// Process implements graph.Operator.
func (o *aggregateOp) Process(out graph.Submitter, t tuple.Tuple, _ int) {
	tv := refTup(t.Ref)
	o.mu.Lock()
	if o.attr != "" {
		switch v := tv[o.attr].(type) {
		case int64:
			if o.n == 0 {
				o.minI, o.maxI = v, v
			}
			o.sumI += v
			o.minI = min(o.minI, v)
			o.maxI = max(o.maxI, v)
		case float64:
			if o.n == 0 {
				o.minF, o.maxF = v, v
			}
			o.sumF += v
			o.minF = min(o.minF, v)
			o.maxF = max(o.maxF, v)
		}
	}
	o.n++
	fire := o.n == o.window
	var res Tup
	if fire {
		res = o.result()
		o.reset()
	}
	o.mu.Unlock()
	if fire {
		out.Submit(tuple.Tuple{Ref: res}, 0)
		out.Submit(tuple.Window(), 0)
	}
}

// Finish implements sched.Finalizer: flush a partial window.
func (o *aggregateOp) Finish(out graph.Submitter) {
	o.mu.Lock()
	var res Tup
	if o.n > 0 {
		res = o.result()
		o.reset()
	}
	o.mu.Unlock()
	if res != nil {
		out.Submit(tuple.Tuple{Ref: res}, 0)
	}
}

// result computes the aggregate for the current window; callers hold mu.
func (o *aggregateOp) result() Tup {
	var v Value
	switch o.fn {
	case "count":
		v = o.n
	case "avg":
		if o.floatOut && o.sumF != 0 {
			v = o.sumF / float64(o.n)
		} else {
			v = (float64(o.sumI) + o.sumF) / float64(o.n)
		}
	case "sum":
		if o.floatOut {
			v = o.sumF
		} else {
			v = o.sumI
		}
	case "min":
		if o.floatOut {
			v = o.minF
		} else {
			v = o.minI
		}
	case "max":
		if o.floatOut {
			v = o.maxF
		} else {
			v = o.maxI
		}
	}
	return Tup{o.outAttr: v}
}

// reset clears the window; callers hold mu.
func (o *aggregateOp) reset() {
	o.n, o.sumI, o.sumF = 0, 0, 0
	o.minI, o.maxI, o.minF, o.maxF = 0, 0, 0, 0
}

// dedupOp drops tuples whose key attribute equals the previous tuple's —
// a consecutive-duplicate filter with operator state.
type dedupOp struct {
	name string
	key  string

	mu   sync.Mutex
	seen bool
	last Value
}

// Name implements graph.Operator.
func (o *dedupOp) Name() string { return o.name }

// Process implements graph.Operator.
func (o *dedupOp) Process(out graph.Submitter, t tuple.Tuple, _ int) {
	tv := refTup(t.Ref)
	k := tv[o.key]
	o.mu.Lock()
	dup := o.seen && valueEq(o.last, k)
	o.seen, o.last = true, k
	o.mu.Unlock()
	if !dup {
		out.Submit(t, 0)
	}
}

var (
	_ graph.Source = (*beaconOp)(nil)
	_ graph.Source = (*fileSourceOp)(nil)
)
