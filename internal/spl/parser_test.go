package spl

import (
	"strings"
	"testing"
)

const fig1Source = `
// The paper's Figure 1 composite: failed logins from system messages.
composite LoginFailures(output Failures) {
  type
    LogLine = timestamp time, rstring hostname, rstring srvc, rstring msg;
    Failure = timestamp time, rstring uid, rstring euid,
              rstring tty, rstring rhost, rstring user;
  graph
    stream<rstring line> Lines = FileSource() {
      param format: line;
            file: "/var/log/messages";
    }
    @parallel(width=7)
    stream<LogLine> ParsedLines = Custom(Lines) {
      logic onTuple Lines: {
        list<rstring> tokens = tokenize(line, " ", false);
        rstring date = makeDate(tokens[1]);
        rstring time = makeTime(tokens[2]);
        timestamp t = makeTimestamp(date, time);
        submit({time = t, hostname = tokens[3],
                srvc = tokens[4], msg = flatten(tokens[5:])},
               ParsedLines);
      }
    }
    stream<LogLine> FailuresRaw = Filter(ParsedLines) {
      param filter:
        findFirst(srvc, "sshd", 0) != -1 &&
        findFirst(msg, "authentication failure", 0) != -1;
    }
    @parallel(width=4)
    stream<Failure> Failures = Custom(FailuresRaw) {
      logic onTuple FailuresRaw: {
        list<rstring> tokens = parseMsg(msg);
        submit({time = FailuresRaw.time,
                uid = tokens[0], euid = tokens[1],
                tty = tokens[2], rhost = tokens[3],
                user = size(tokens) == 5 ? tokens[4] : ""},
               Failures);
      }
    }
}
`

const fig1Main = `
@threading(model=dynamic)
composite Main {
  graph
    stream<Failure> Failures = LoginFailures() {}
    () as Sink = FileSink(Failures) {
      param file: "failures.txt";
    }
}
`

func TestParseFig1(t *testing.T) {
	prog, err := Parse(fig1Source + fig1Main)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Composites) != 2 {
		t.Fatalf("parsed %d composites, want 2", len(prog.Composites))
	}
	lf := prog.Composites[0]
	if lf.Name != "LoginFailures" || len(lf.Outputs) != 1 || lf.Outputs[0] != "Failures" {
		t.Fatalf("composite header wrong: %+v", lf)
	}
	if len(lf.Types) != 2 || lf.Types[0].Name != "LogLine" || len(lf.Types[1].Fields) != 6 {
		t.Fatalf("type section wrong: %+v", lf.Types)
	}
	if len(lf.Invocations) != 4 {
		t.Fatalf("parsed %d invocations, want 4", len(lf.Invocations))
	}
	par := lf.Invocations[1]
	if len(par.Annotations) != 1 || par.Annotations[0].Name != "parallel" || par.Annotations[0].Args["width"] != "7" {
		t.Fatalf("@parallel annotation wrong: %+v", par.Annotations)
	}
	if par.OpName != "Custom" || par.OutStream != "ParsedLines" || len(par.Logic) != 1 {
		t.Fatalf("custom invocation wrong: %+v", par)
	}
	main := prog.Composites[1]
	if len(main.Annotations) != 1 || main.Annotations[0].Args["model"] != "dynamic" {
		t.Fatalf("@threading annotation wrong: %+v", main.Annotations)
	}
	snk := main.Invocations[1]
	if snk.Alias != "Sink" || snk.OpName != "FileSink" || snk.Inputs[0][0] != "Failures" {
		t.Fatalf("sink invocation wrong: %+v", snk)
	}
}

func TestParseStatements(t *testing.T) {
	src := `
composite C {
  graph
    stream<int64 x> Out = Custom(In) {
      logic onTuple In: {
        mutable int64 acc = 0;
        acc = acc + x;
        if (acc > 10) {
          submit({x = acc}, Out);
        } else {
          spin(5);
        }
        list<int64> xs = [1, 2, 3];
        xs[0] = 9;
        int64 y = xs[0] % 2 == 0 ? xs[1] : -xs[2];
        submit({x = y}, Out);
      }
    }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	blk := prog.Composites[0].Invocations[0].Logic["In"]
	if len(blk.Stmts) != 7 {
		t.Fatalf("parsed %d statements, want 7", len(blk.Stmts))
	}
	if _, ok := blk.Stmts[0].(*DeclStmt); !ok {
		t.Fatalf("stmt 0 is %T, want DeclStmt", blk.Stmts[0])
	}
	if !blk.Stmts[0].(*DeclStmt).Mutable {
		t.Fatal("mutable flag lost")
	}
	if _, ok := blk.Stmts[1].(*AssignStmt); !ok {
		t.Fatalf("stmt 1 is %T, want AssignStmt", blk.Stmts[1])
	}
	ifs, ok := blk.Stmts[2].(*IfStmt)
	if !ok || ifs.Else == nil {
		t.Fatalf("stmt 2 is %T (else=%v)", blk.Stmts[2], ok)
	}
	if _, ok := blk.Stmts[4].(*AssignStmt); !ok {
		t.Fatalf("stmt 4 is %T, want index AssignStmt", blk.Stmts[4])
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		``:                          "no composite operators",
		`composite {`:               "expected identifier",
		`composite C { wrong }`:     "expected 'type' or 'graph'",
		`composite C { graph foo }`: "expected 'stream' or '()'",
		`composite C { graph stream<T> X = F(); }`:                                  "expected '{'",
		`composite C { graph () as S = F() { bogus } }`:                             "expected 'param' or 'logic'",
		`@ann() composite C {}`:                                                     "expected identifier",
		`composite C(weird X) {}`:                                                   "expected 'output' or 'input'",
		`composite C { graph stream<T> X = F() { logic onTuple A: { submit(; } } }`: "expected '{'",
	}
	for src, want := range cases {
		_, err := Parse(src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error %q", src, want)
			continue
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Parse(%q) error %q, want %q", src, err, want)
		}
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	src := `
composite C {
  graph
    stream<int64 x> Out = Custom(In) {
      logic onTuple In: {
        int64 y = 1 + 2 * 3;
        submit({x = y}, Out);
      }
    }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	decl := prog.Composites[0].Invocations[0].Logic["In"].Stmts[0].(*DeclStmt)
	add, ok := decl.Init.(*BinaryExpr)
	if !ok || add.Op != PLUS {
		t.Fatalf("top operator %T, want + at top", decl.Init)
	}
	mul, ok := add.Y.(*BinaryExpr)
	if !ok || mul.Op != STAR {
		t.Fatalf("right operand %T, want *", add.Y)
	}
}

func TestConstEval(t *testing.T) {
	good := map[string]Value{
		`1 + 2 * 3`:                  int64(7),
		`"a" + "b"`:                  "ab",
		`10 % 3`:                     int64(1),
		`true && false`:              false,
		`1 < 2 ? 10 : 20`:            int64(10),
		`-(4 - 6)`:                   int64(2),
		`size([1, 2, 3])`:            int64(3),
		`findFirst("xaby", "ab", 0)`: int64(1),
		`2.5 + 1.5`:                  float64(4),
		`2.5 * 2.0 - 1.0`:            float64(4),
		`3.0 / 2.0`:                  float64(1.5),
		`1.5 < 2.5`:                  true,
		`2.5 >= 2.5`:                 true,
		`"abc" < "abd"`:              true,
		`"b" >= "a"`:                 true,
		`"x" <= "x"`:                 true,
		`5 <= 4`:                     false,
		`!false`:                     true,
		`-2.5`:                       float64(-2.5),
		`true || false`:              true,
		`[1, 2] == [1, 2]`:           true,
		`[1] != [2]`:                 true,
		`10 % 4 == 2`:                true,
	}
	for src, want := range good {
		toks, err := Lex(src)
		if err != nil {
			t.Fatal(err)
		}
		p := &Parser{toks: toks}
		e, err := p.expr()
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		v, err := constEval(e)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if !valueEq(v, want) {
			t.Errorf("constEval(%s) = %v, want %v", src, v, want)
		}
	}
	// Errors: type errors and runtime faults both surface as errors.
	for _, src := range []string{`1 + "a"`, `1 / 0`, `[1,2][5]`, `undefinedName`} {
		toks, _ := Lex(src)
		p := &Parser{toks: toks}
		e, err := p.expr()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := constEval(e); err == nil {
			t.Errorf("constEval(%s) succeeded, want error", src)
		}
	}
}
