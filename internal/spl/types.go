package spl

import (
	"fmt"
	"strings"
)

// Type is a resolved SPL type.
type Type interface {
	String() string
	equal(Type) bool
}

// Prim is a primitive type.
type Prim int

// Primitive types. Int32 and Int64 are distinct for checking but share
// the int64 runtime representation; Timestamp shares the string
// representation with RString.
const (
	Boolean Prim = iota
	Int32
	Int64
	Float64
	RString
	Timestamp
)

// String implements Type.
func (p Prim) String() string {
	switch p {
	case Boolean:
		return "boolean"
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case RString:
		return "rstring"
	case Timestamp:
		return "timestamp"
	default:
		return fmt.Sprintf("Prim(%d)", int(p))
	}
}

func (p Prim) equal(o Type) bool {
	q, ok := o.(Prim)
	return ok && p == q
}

// isInt reports whether t is an integer type.
func isInt(t Type) bool { return t.equal(Int32) || t.equal(Int64) }

// assignable reports whether a value of type src can be used where dst is
// expected; the only implicit conversion is integer widening (and int
// literal narrowing, handled by both directions being allowed between
// the integer types).
func assignable(dst, src Type) bool {
	if dst.equal(src) {
		return true
	}
	if isInt(dst) && isInt(src) {
		return true
	}
	return false
}

// ListType is list<Elem>.
type ListType struct {
	Elem Type
}

// String implements Type.
func (l ListType) String() string { return "list<" + l.Elem.String() + ">" }

func (l ListType) equal(o Type) bool {
	m, ok := o.(ListType)
	return ok && l.Elem.equal(m.Elem)
}

// TField is one attribute of a tuple type.
type TField struct {
	Name string
	Type Type
}

// TupleType is an ordered attribute list; stream types are tuple types.
type TupleType struct {
	Fields []TField
}

// String implements Type.
func (t TupleType) String() string {
	parts := make([]string, len(t.Fields))
	for i, f := range t.Fields {
		parts[i] = f.Type.String() + " " + f.Name
	}
	return "tuple<" + strings.Join(parts, ", ") + ">"
}

func (t TupleType) equal(o Type) bool {
	u, ok := o.(TupleType)
	if !ok || len(t.Fields) != len(u.Fields) {
		return false
	}
	for i := range t.Fields {
		if t.Fields[i].Name != u.Fields[i].Name || !t.Fields[i].Type.equal(u.Fields[i].Type) {
			return false
		}
	}
	return true
}

// Field returns the type of the named attribute.
func (t TupleType) Field(name string) (Type, bool) {
	for _, f := range t.Fields {
		if f.Name == name {
			return f.Type, true
		}
	}
	return nil, false
}

// primTypes maps source spellings to primitives.
var primTypes = map[string]Prim{
	"boolean":   Boolean,
	"int32":     Int32,
	"int64":     Int64,
	"float64":   Float64,
	"rstring":   RString,
	"timestamp": Timestamp,
}

// resolveType turns a syntactic TypeExpr into a Type, using named to look
// up type-section definitions.
func resolveType(te *TypeExpr, named map[string]TupleType) (Type, error) {
	switch {
	case te == nil:
		return nil, fmt.Errorf("missing type")
	case te.Name == "list":
		elem, err := resolveType(te.Elem, named)
		if err != nil {
			return nil, err
		}
		return ListType{Elem: elem}, nil
	case te.Name == "":
		fields, err := resolveFields(te.Fields, named)
		if err != nil {
			return nil, err
		}
		return TupleType{Fields: fields}, nil
	default:
		if p, ok := primTypes[te.Name]; ok {
			return p, nil
		}
		if tt, ok := named[te.Name]; ok {
			return tt, nil
		}
		return nil, errf(te.Pos, "unknown type %q", te.Name)
	}
}

// resolveFields resolves a syntactic field list into tuple fields,
// flattening named tuple types used as field groups (SPL allows a named
// tuple type to appear in a field list, splicing its attributes).
func resolveFields(fs []Field, named map[string]TupleType) ([]TField, error) {
	var out []TField
	seen := map[string]bool{}
	for _, f := range fs {
		t, err := resolveType(&f.Type, named)
		if err != nil {
			return nil, err
		}
		if seen[f.Name] {
			return nil, errf(f.Type.Pos, "duplicate attribute %q", f.Name)
		}
		seen[f.Name] = true
		out = append(out, TField{Name: f.Name, Type: t})
	}
	return out, nil
}
