package spl

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"streams/internal/pe"
)

// memFile is an in-memory WriteCloser for FileSink capture.
type memFile struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	closed bool
}

func (m *memFile) Write(p []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.buf.Write(p)
}

func (m *memFile) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

func (m *memFile) Lines() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := strings.TrimRight(m.buf.String(), "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// compileRun compiles src with captured file IO and runs it to drain
// under the given model, returning sink files by name.
func compileRun(t *testing.T, src string, model pe.Model, threads int, inputs map[string]string) map[string]*memFile {
	t.Helper()
	files := map[string]*memFile{}
	var mu sync.Mutex
	c, err := Compile(src, Options{
		ReaderFor: func(f string) (io.ReadCloser, error) {
			content, ok := inputs[f]
			if !ok {
				return nil, fmt.Errorf("no test input registered for %q", f)
			}
			return io.NopCloser(strings.NewReader(content)), nil
		},
		WriterFor: func(f string) (io.WriteCloser, error) {
			mu.Lock()
			defer mu.Unlock()
			mf := &memFile{}
			files[f] = mf
			return mf, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := pe.New(c.Graph, pe.Config{Model: model, Threads: threads, MaxThreads: max(threads, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { p.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("compiled program did not drain")
	}
	return files
}

const beaconProgram = `
composite Main {
  graph
    stream<int64 i> Nums = Beacon() {
      param iterations: 1000;
    }
    stream<int64 i> Heavy = Work(Nums) {
      param cost: 10;
    }
    stream<int64 i> Evens = Filter(Heavy) {
      param filter: i % 2 == 0;
    }
    () as Out = FileSink(Evens) {
      param file: "out.txt";
    }
}
`

func TestCompileBeaconPipeline(t *testing.T) {
	for _, model := range []pe.Model{pe.Manual, pe.Dynamic} {
		files := compileRun(t, beaconProgram, model, 2, nil)
		lines := files["out.txt"].Lines()
		if len(lines) != 500 {
			t.Fatalf("%v: sink got %d lines, want 500", model, len(lines))
		}
		if lines[0] != "0" || lines[1] != "2" || lines[499] != "998" {
			t.Fatalf("%v: unexpected lines %v ...", model, lines[:3])
		}
	}
}

func TestCompileSinkCounting(t *testing.T) {
	c, err := Compile(beaconProgram, Options{
		WriterFor: func(string) (io.WriteCloser, error) { return &memFile{}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Sinks) != 1 || c.Sinks["Out"] == nil {
		t.Fatalf("Sinks = %v", c.Sinks)
	}
	if c.Sinks["Out"].File() != "out.txt" {
		t.Fatalf("sink file = %q", c.Sinks["Out"].File())
	}
	p, err := pe.New(c.Graph, pe.Config{Model: pe.Manual})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.Wait()
	if got := c.Sinks["Out"].Count(); got != 500 {
		t.Fatalf("sink count = %d, want 500", got)
	}
	if err := c.Sinks["Out"].Err(); err != nil {
		t.Fatal(err)
	}
}

// syntheticLog builds /var/log/messages-style content with nFail sshd
// authentication failures interleaved with noise.
func syntheticLog(nFail int) string {
	var sb strings.Builder
	for i := 0; i < nFail; i++ {
		fmt.Fprintf(&sb, "Jun 10 03:03:%02d myhost cron[%d]: (root) CMD (run-parts)\n", i%60, i)
		fmt.Fprintf(&sb, "Jun 10 03:04:%02d myhost sshd[%d]: pam_unix(sshd:auth): authentication failure; logname= uid=0 euid=0 tty=ssh ruser= rhost=10.0.0.%d user=bad%d\n", i%60, 1000+i, i%256, i)
		fmt.Fprintf(&sb, "Jun 10 03:05:%02d myhost systemd[1]: Started session\n", i%60)
		fmt.Fprintf(&sb, "Jun 10 03:06:%02d myhost sshd[%d]: Accepted password for gooduser\n", i%60, 2000+i)
	}
	return sb.String()
}

func TestCompileFig1EndToEnd(t *testing.T) {
	const nFail = 200
	inputs := map[string]string{"/var/log/messages": syntheticLog(nFail)}
	for _, model := range []pe.Model{pe.Manual, pe.Dedicated, pe.Dynamic} {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			files := compileRun(t, fig1Source+fig1Main, model, 3, inputs)
			lines := files["failures.txt"].Lines()
			if len(lines) != nFail {
				t.Fatalf("got %d failure records, want %d", len(lines), nFail)
			}
			users := map[string]bool{}
			for _, l := range lines {
				// Failure fields: time, uid, euid, tty, rhost, user.
				parts := strings.Split(l, ",")
				if len(parts) != 6 {
					t.Fatalf("record %q has %d fields, want 6", l, len(parts))
				}
				if parts[1] != "0" || parts[2] != "0" || parts[3] != "ssh" {
					t.Fatalf("unexpected failure record %q", l)
				}
				if !strings.HasPrefix(parts[4], "10.0.0.") {
					t.Fatalf("bad rhost in %q", l)
				}
				users[parts[5]] = true
			}
			for i := 0; i < nFail; i++ {
				if !users[fmt.Sprintf("bad%d", i)] {
					t.Fatalf("missing failure for user bad%d", i)
				}
			}
		})
	}
}

func TestCompileFig1GraphShape(t *testing.T) {
	c, err := Compile(fig1Source+fig1Main, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Threading != "dynamic" {
		t.Fatalf("Threading = %q, want dynamic", c.Threading)
	}
	// Nodes: FileSource + split + 7 Custom replicas + Filter + split +
	// 4 Custom replicas + FileSink = 16.
	if got := len(c.Graph.Nodes); got != 16 {
		t.Fatalf("lowered graph has %d nodes, want 16", got)
	}
	st := c.Graph.Stats()
	if st.Sources != 1 || st.Sinks != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCompileParallelPreservesPerReplicaOrder(t *testing.T) {
	src := `
composite Main {
  graph
    stream<int64 i> Nums = Beacon() {
      param iterations: 900;
    }
    @parallel(width=3)
    stream<int64 i> Workers = Work(Nums) {
      param cost: 5;
    }
    () as Out = FileSink(Workers) {
      param file: "o";
    }
}
`
	files := compileRun(t, src, pe.Dynamic, 3, nil)
	lines := files["o"].Lines()
	if len(lines) != 900 {
		t.Fatalf("got %d lines, want 900", len(lines))
	}
	// Round-robin split: replica r sees i ≡ r (mod 3) in increasing
	// order; the sink interleaves replicas arbitrarily but each residue
	// class must arrive ordered.
	last := map[int64]int64{0: -1, 1: -1, 2: -1}
	for _, l := range lines {
		var v int64
		fmt.Sscanf(l, "%d", &v)
		r := v % 3
		if v <= last[r] {
			t.Fatalf("residue class %d out of order: %d after %d", r, v, last[r])
		}
		last[r] = v
	}
}

func TestCompileThreadingAnnotations(t *testing.T) {
	for _, m := range []string{"manual", "dedicated", "dynamic"} {
		src := fmt.Sprintf(`
@threading(model=%s, threads=8)
composite Main {
  graph
    stream<int64 i> N = Beacon() { param iterations: 1; }
    () as S = FileSink(N) { param file: "x"; }
}
`, m)
		c, err := Compile(src, Options{WriterFor: func(string) (io.WriteCloser, error) { return &memFile{}, nil }})
		if err != nil {
			t.Fatal(err)
		}
		if c.Threading != m || c.Threads != 8 {
			t.Fatalf("Threading=%q Threads=%d, want %q/8", c.Threading, c.Threads, m)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown operator", `
composite Main { graph
  stream<int64 i> X = Nonsense() {}
  () as S = FileSink(X) { param file: "x"; }
}`, "unknown operator"},
		{"unknown stream", `
composite Main { graph
  () as S = FileSink(Ghost) { param file: "x"; }
}`, "unknown input stream"},
		{"undefined attr", `
composite Main { graph
  stream<int64 i> N = Beacon() { param iterations: 1; }
  stream<int64 i> F = Filter(N) { param filter: missing > 0; }
  () as S = FileSink(F) { param file: "x"; }
}`, "undefined name"},
		{"filter not boolean", `
composite Main { graph
  stream<int64 i> N = Beacon() { param iterations: 1; }
  stream<int64 i> F = Filter(N) { param filter: i + 1; }
  () as S = FileSink(F) { param file: "x"; }
}`, "want boolean"},
		{"submit bad attribute", `
composite Main { graph
  stream<int64 i> N = Beacon() { param iterations: 1; }
  stream<int64 j> C = Custom(N) {
    logic onTuple N: { submit({nope = i}, C); }
  }
  () as S = FileSink(C) { param file: "x"; }
}`, "no attribute"},
		{"submit wrong stream", `
composite Main { graph
  stream<int64 i> N = Beacon() { param iterations: 1; }
  stream<int64 i> C = Custom(N) {
    logic onTuple N: { submit({i = i}, Elsewhere); }
  }
  () as S = FileSink(C) { param file: "x"; }
}`, "not an output stream"},
		{"assign immutable", `
composite Main { graph
  stream<int64 i> N = Beacon() { param iterations: 1; }
  stream<int64 i> C = Custom(N) {
    logic onTuple N: { int64 x = 1; x = 2; submit({i = x}, C); }
  }
  () as S = FileSink(C) { param file: "x"; }
}`, "declare it 'mutable'"},
		{"duplicate composite", `
composite Main { graph
  stream<int64 i> N = Beacon() { param iterations: 1; }
  () as S = FileSink(N) { param file: "x"; }
}
composite Main { graph
  stream<int64 i> N = Beacon() { param iterations: 1; }
  () as S = FileSink(N) { param file: "x"; }
}`, "duplicate composite"},
		{"bad parallel width", `
composite Main { graph
  stream<int64 i> N = Beacon() { param iterations: 1; }
  @parallel(width=zero)
  stream<int64 i> W = Work(N) { param cost: 1; }
  () as S = FileSink(W) { param file: "x"; }
}`, "@parallel requires a positive integer width"},
		{"bad threading model", `
@threading(model=magic)
composite Main { graph
  stream<int64 i> N = Beacon() { param iterations: 1; }
  () as S = FileSink(N) { param file: "x"; }
}`, "unknown threading model"},
		{"unknown param", `
composite Main { graph
  stream<int64 i> N = Beacon() { param wrong: 1; }
  () as S = FileSink(N) { param file: "x"; }
}`, `no parameter "wrong"`},
		{"type mismatch in decl", `
composite Main { graph
  stream<int64 i> N = Beacon() { param iterations: 1; }
  stream<int64 i> C = Custom(N) {
    logic onTuple N: { rstring s = i; submit({i = i}, C); }
  }
  () as S = FileSink(C) { param file: "x"; }
}`, "cannot initialize"},
		{"unknown builtin", `
composite Main { graph
  stream<int64 i> N = Beacon() { param iterations: 1; }
  stream<int64 i> C = Custom(N) {
    logic onTuple N: { submit({i = frob(i)}, C); }
  }
  () as S = FileSink(C) { param file: "x"; }
}`, "unknown function"},
		{"filter type change", `
composite Main { graph
  stream<int64 i> N = Beacon() { param iterations: 1; }
  stream<int64 j> F = Filter(N) { param filter: true; }
  () as S = FileSink(F) { param file: "x"; }
}`, "must equal its input type"},
		{"main with params", `
composite Main(output X) { graph
  stream<int64 i> X = Beacon() { param iterations: 1; }
}`, "must not have input or output parameters"},
		{"missing main", `
composite NotMain { graph
  stream<int64 i> N = Beacon() { param iterations: 1; }
  () as S = FileSink(N) { param file: "x"; }
}
composite AlsoNotMain { graph
  stream<int64 i> N = Beacon() { param iterations: 1; }
  () as S = FileSink(N) { param file: "x"; }
}`, `main composite "Main" not found`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src, Options{})
			if err == nil {
				t.Fatalf("Compile succeeded, want error %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestCompileCompositeChain(t *testing.T) {
	src := `
composite Doubler(output Out; input In) {
  graph
    stream<int64 i> Out = Custom(In) {
      logic onTuple In: { submit({i = i * 2}, Out); }
    }
}
composite Main {
  graph
    stream<int64 i> N = Beacon() { param iterations: 5; }
    stream<int64 i> A = Doubler(N) {}
    stream<int64 i> B = Doubler(A) {}
    () as S = FileSink(B) { param file: "quad"; }
}
`
	files := compileRun(t, src, pe.Manual, 1, nil)
	lines := files["quad"].Lines()
	want := []string{"0", "4", "8", "12", "16"}
	if len(lines) != 5 {
		t.Fatalf("got %d lines %v", len(lines), lines)
	}
	for i, l := range lines {
		if l != want[i] {
			t.Fatalf("line %d = %q, want %q", i, l, want[i])
		}
	}
}

func TestCompileMainSelection(t *testing.T) {
	src := `
composite OnlyOne {
  graph
    stream<int64 i> N = Beacon() { param iterations: 3; }
    () as S = FileSink(N) { param file: "f"; }
}
`
	// With a single composite, it is the main even if not named Main.
	c, err := Compile(src, Options{WriterFor: func(string) (io.WriteCloser, error) { return &memFile{}, nil }})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Graph.Nodes) != 2 {
		t.Fatalf("nodes = %d", len(c.Graph.Nodes))
	}
	// Explicit Options.Main selects by name.
	if _, err := Compile(src, Options{Main: "Missing"}); err == nil {
		t.Fatal("missing main accepted")
	}
}
