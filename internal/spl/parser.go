package spl

import "strconv"

// Parser is a recursive-descent parser over the token stream.
type Parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses an SPL source file.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.program()
}

func (p *Parser) cur() Token     { return p.toks[p.pos] }
func (p *Parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *Parser) peekKind(ahead int) Kind {
	if p.pos+ahead >= len(p.toks) {
		return EOF
	}
	return p.toks[p.pos+ahead].Kind
}

func (p *Parser) next() Token {
	t := p.cur()
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *Parser) expect(k Kind) (Token, error) {
	if !p.at(k) {
		return p.cur(), errf(p.cur().Pos, "expected %v, found %v", k, p.cur().Kind)
	}
	return p.next(), nil
}

func (p *Parser) accept(k Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

// program := (annotation* composite)* EOF
func (p *Parser) program() (*Program, error) {
	prog := &Program{}
	for !p.at(EOF) {
		anns, err := p.annotations()
		if err != nil {
			return nil, err
		}
		c, err := p.composite(anns)
		if err != nil {
			return nil, err
		}
		prog.Composites = append(prog.Composites, c)
	}
	if len(prog.Composites) == 0 {
		return nil, errf(p.cur().Pos, "no composite operators in source")
	}
	return prog, nil
}

// annotations := ("@" IDENT "(" key "=" value ("," key "=" value)* ")")*
func (p *Parser) annotations() ([]*Annotation, error) {
	var anns []*Annotation
	for p.at(AT) {
		pos := p.next().Pos
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		ann := &Annotation{Pos: pos, Name: name.Text, Args: map[string]string{}}
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		for {
			key, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(ASSIGN); err != nil {
				return nil, err
			}
			val := p.next()
			switch val.Kind {
			case IDENT, INT, FLOAT, STRING:
				ann.Args[key.Text] = val.Text
			default:
				return nil, errf(val.Pos, "annotation value must be an identifier or literal, found %v", val.Kind)
			}
			if !p.accept(COMMA) {
				break
			}
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		anns = append(anns, ann)
	}
	return anns, nil
}

// composite := "composite" IDENT params? "{" section* "}"
func (p *Parser) composite(anns []*Annotation) (*Composite, error) {
	kw, err := p.expect(KWComposite)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	c := &Composite{Pos: kw.Pos, Name: name.Text, Annotations: anns}
	if p.accept(LPAREN) {
		if err := p.compositeParams(c); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	for !p.at(RBRACE) {
		switch p.cur().Kind {
		case KWType:
			p.next()
			if err := p.typeSection(c); err != nil {
				return nil, err
			}
		case KWGraph:
			p.next()
			if err := p.graphSection(c); err != nil {
				return nil, err
			}
		default:
			return nil, errf(p.cur().Pos, "expected 'type' or 'graph' section, found %v", p.cur().Kind)
		}
	}
	_, err = p.expect(RBRACE)
	return c, err
}

// compositeParams := ("output"|"input") names (";" ("output"|"input") names)* ")"
func (p *Parser) compositeParams(c *Composite) error {
	for {
		var into *[]string
		switch p.cur().Kind {
		case KWOutput:
			into = &c.Outputs
		case KWInput:
			into = &c.Inputs
		default:
			return errf(p.cur().Pos, "expected 'output' or 'input' in composite parameters, found %v", p.cur().Kind)
		}
		p.next()
		for {
			id, err := p.expect(IDENT)
			if err != nil {
				return err
			}
			*into = append(*into, id.Text)
			if !p.accept(COMMA) {
				break
			}
		}
		if !p.accept(SEMI) {
			break
		}
	}
	_, err := p.expect(RPAREN)
	return err
}

// typeSection := (IDENT "=" fieldList ";")* — ends at 'graph', 'type' or '}'.
func (p *Parser) typeSection(c *Composite) error {
	for p.at(IDENT) {
		name := p.next()
		if _, err := p.expect(ASSIGN); err != nil {
			return err
		}
		fields, err := p.fieldList()
		if err != nil {
			return err
		}
		if _, err := p.expect(SEMI); err != nil {
			return err
		}
		c.Types = append(c.Types, &TypeDef{Pos: name.Pos, Name: name.Text, Fields: fields})
	}
	return nil
}

// fieldList := typeExpr IDENT ("," typeExpr IDENT)*
func (p *Parser) fieldList() ([]Field, error) {
	var fields []Field
	for {
		te, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		fields = append(fields, Field{Type: *te, Name: name.Text})
		if !p.accept(COMMA) {
			break
		}
	}
	return fields, nil
}

// typeExpr := "list" "<" typeExpr ">" | IDENT
func (p *Parser) typeExpr() (*TypeExpr, error) {
	id, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	te := &TypeExpr{Pos: id.Pos, Name: id.Text}
	if id.Text == "list" {
		if _, err := p.expect(LANGLE); err != nil {
			return nil, err
		}
		elem, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		te.Elem = elem
		if _, err := p.expect(RANGLE); err != nil {
			return nil, err
		}
	}
	return te, nil
}

// streamType := IDENT | fieldList  (inside stream< ... >)
func (p *Parser) streamType() (*TypeExpr, error) {
	// A lone identifier followed by '>' is a named type; anything else is
	// an inline field list.
	if p.at(IDENT) && p.peekKind(1) == RANGLE {
		id := p.next()
		return &TypeExpr{Pos: id.Pos, Name: id.Text}, nil
	}
	pos := p.cur().Pos
	fields, err := p.fieldList()
	if err != nil {
		return nil, err
	}
	return &TypeExpr{Pos: pos, Fields: fields}, nil
}

// graphSection := invocation* — ends at 'type', 'graph' or '}'.
func (p *Parser) graphSection(c *Composite) error {
	for {
		switch p.cur().Kind {
		case RBRACE, KWType, KWGraph, EOF:
			return nil
		}
		inv, err := p.invocation()
		if err != nil {
			return err
		}
		c.Invocations = append(c.Invocations, inv)
	}
}

// invocation := annotations (streamDecl | sinkDecl)
func (p *Parser) invocation() (*Invocation, error) {
	anns, err := p.annotations()
	if err != nil {
		return nil, err
	}
	inv := &Invocation{Annotations: anns, Logic: map[string]*Block{}}
	switch p.cur().Kind {
	case KWStream:
		kw := p.next()
		inv.Pos = kw.Pos
		if _, err := p.expect(LANGLE); err != nil {
			return nil, err
		}
		ot, err := p.streamType()
		if err != nil {
			return nil, err
		}
		inv.OutType = ot
		if _, err := p.expect(RANGLE); err != nil {
			return nil, err
		}
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		inv.OutStream = name.Text
	case LPAREN:
		kw := p.next()
		inv.Pos = kw.Pos
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		if _, err := p.expect(KWAs); err != nil {
			return nil, err
		}
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		inv.Alias = name.Text
	default:
		return nil, errf(p.cur().Pos, "expected 'stream' or '()' invocation, found %v", p.cur().Kind)
	}
	if _, err := p.expect(ASSIGN); err != nil {
		return nil, err
	}
	op, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	inv.OpName = op.Text
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	if !p.at(RPAREN) {
		for {
			var port []string
			for {
				id, err := p.expect(IDENT)
				if err != nil {
					return nil, err
				}
				port = append(port, id.Text)
				if !p.accept(COMMA) {
					break
				}
			}
			inv.Inputs = append(inv.Inputs, port)
			if !p.accept(SEMI) {
				break
			}
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	for !p.at(RBRACE) {
		switch p.cur().Kind {
		case KWParam:
			p.next()
			for p.at(IDENT) {
				pa, err := p.paramAssign()
				if err != nil {
					return nil, err
				}
				inv.Params = append(inv.Params, pa)
			}
		case KWLogic:
			p.next()
			for p.at(KWOnTuple) || p.at(KWState) {
				if p.at(KWState) {
					st := p.next()
					if _, err := p.expect(COLON); err != nil {
						return nil, err
					}
					blk, err := p.block()
					if err != nil {
						return nil, err
					}
					if inv.State != nil {
						return nil, errf(st.Pos, "duplicate state clause")
					}
					inv.State = blk
					continue
				}
				p.next()
				stream, err := p.expect(IDENT)
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(COLON); err != nil {
					return nil, err
				}
				blk, err := p.block()
				if err != nil {
					return nil, err
				}
				if _, dup := inv.Logic[stream.Text]; dup {
					return nil, errf(stream.Pos, "duplicate onTuple clause for stream %q", stream.Text)
				}
				inv.Logic[stream.Text] = blk
			}
		default:
			return nil, errf(p.cur().Pos, "expected 'param' or 'logic' clause, found %v", p.cur().Kind)
		}
	}
	_, err = p.expect(RBRACE)
	return inv, err
}

// paramAssign := IDENT ":" expr ";"
func (p *Parser) paramAssign() (*ParamAssign, error) {
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COLON); err != nil {
		return nil, err
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return &ParamAssign{Pos: name.Pos, Name: name.Text, Expr: e}, nil
}

// block := "{" stmt* "}"
func (p *Parser) block() (*Block, error) {
	lb, err := p.expect(LBRACE)
	if err != nil {
		return nil, err
	}
	blk := &Block{Pos: lb.Pos}
	for !p.at(RBRACE) {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.next() // consume }
	return blk, nil
}

// stmt dispatches on the statement's leading tokens.
func (p *Parser) stmt() (Stmt, error) {
	switch p.cur().Kind {
	case KWIf:
		return p.ifStmt()
	case KWWhile:
		return p.whileStmt()
	case KWBreak:
		kw := p.next()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: kw.Pos}, nil
	case KWContinue:
		kw := p.next()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: kw.Pos}, nil
	case KWSubmit:
		return p.submitStmt()
	case KWMutable:
		p.next()
		return p.declStmt(true)
	case IDENT:
		// IDENT IDENT → declaration with a named/primitive type.
		// "list" "<" → declaration with a list type.
		if p.peekKind(1) == IDENT || (p.cur().Text == "list" && p.peekKind(1) == LANGLE) {
			return p.declStmt(false)
		}
	}
	pos := p.cur().Pos
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.accept(ASSIGN) {
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: pos, Target: e, Value: v}, nil
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return &ExprStmt{Pos: pos, X: e}, nil
}

func (p *Parser) declStmt(mutable bool) (Stmt, error) {
	te, err := p.typeExpr()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ASSIGN); err != nil {
		return nil, err
	}
	init, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return &DeclStmt{Pos: te.Pos, Mutable: mutable, Type: *te, Name: name.Text, Init: init}, nil
}

func (p *Parser) ifStmt() (Stmt, error) {
	kw := p.next()
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Pos: kw.Pos, Cond: cond, Then: then}
	if p.accept(KWElse) {
		els, err := p.block()
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	return st, nil
}

func (p *Parser) whileStmt() (Stmt, error) {
	kw := p.next()
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: kw.Pos, Cond: cond, Body: body}, nil
}

func (p *Parser) submitStmt() (Stmt, error) {
	kw := p.next()
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	tl, err := p.tupleLit()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COMMA); err != nil {
		return nil, err
	}
	stream, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return &SubmitStmt{Pos: kw.Pos, Tuple: tl, Stream: stream.Text}, nil
}

func (p *Parser) tupleLit() (*TupleLit, error) {
	lb, err := p.expect(LBRACE)
	if err != nil {
		return nil, err
	}
	tl := &TupleLit{Pos: lb.Pos}
	for {
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(ASSIGN); err != nil {
			return nil, err
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		tl.Names = append(tl.Names, name.Text)
		tl.Values = append(tl.Values, v)
		if !p.accept(COMMA) {
			break
		}
	}
	_, err = p.expect(RBRACE)
	return tl, err
}

// Expression parsing: precedence climbing.

func (p *Parser) expr() (Expr, error) { return p.ternary() }

func (p *Parser) ternary() (Expr, error) {
	c, err := p.binary(0)
	if err != nil {
		return nil, err
	}
	if !p.accept(QUESTION) {
		return c, nil
	}
	t, err := p.ternary()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COLON); err != nil {
		return nil, err
	}
	f, err := p.ternary()
	if err != nil {
		return nil, err
	}
	return &CondExpr{Pos: c.P(), C: c, T: t, F: f}, nil
}

// binLevels orders binary operators from loosest to tightest.
var binLevels = [][]Kind{
	{OROR},
	{ANDAND},
	{EQ, NEQ},
	{LANGLE, RANGLE, LEQ, GEQ},
	{PLUS, MINUS},
	{STAR, SLASH, PERCENT},
}

func (p *Parser) binary(level int) (Expr, error) {
	if level == len(binLevels) {
		return p.unary()
	}
	lhs, err := p.binary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, k := range binLevels[level] {
			if p.at(k) {
				op := p.next()
				rhs, err := p.binary(level + 1)
				if err != nil {
					return nil, err
				}
				lhs = &BinaryExpr{Pos: op.Pos, Op: op.Kind, X: lhs, Y: rhs}
				matched = true
				break
			}
		}
		if !matched {
			return lhs, nil
		}
	}
}

func (p *Parser) unary() (Expr, error) {
	if p.at(NOT) || p.at(MINUS) {
		op := p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: op.Pos, Op: op.Kind, X: x}, nil
	}
	return p.postfix()
}

func (p *Parser) postfix() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(DOT):
			p.next()
			name, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			x = &AttrExpr{Pos: name.Pos, X: x, Name: name.Text}
		case p.at(LBRACKET):
			lb := p.next()
			var lo Expr
			if !p.at(COLON) {
				lo, err = p.expr()
				if err != nil {
					return nil, err
				}
			}
			if p.accept(COLON) {
				var hi Expr
				if !p.at(RBRACKET) {
					hi, err = p.expr()
					if err != nil {
						return nil, err
					}
				}
				if _, err := p.expect(RBRACKET); err != nil {
					return nil, err
				}
				x = &SliceExpr{Pos: lb.Pos, X: x, Lo: lo, Hi: hi}
			} else {
				if _, err := p.expect(RBRACKET); err != nil {
					return nil, err
				}
				if lo == nil {
					return nil, errf(lb.Pos, "missing index expression")
				}
				x = &IndexExpr{Pos: lb.Pos, X: x, I: lo}
			}
		default:
			return x, nil
		}
	}
}

func (p *Parser) primary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case INT:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad integer literal %q", t.Text)
		}
		return &IntLit{Pos: t.Pos, V: v}, nil
	case FLOAT:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad float literal %q", t.Text)
		}
		return &FloatLit{Pos: t.Pos, V: v}, nil
	case STRING:
		p.next()
		return &StringLit{Pos: t.Pos, V: t.Text}, nil
	case KWTrue:
		p.next()
		return &BoolLit{Pos: t.Pos, V: true}, nil
	case KWFalse:
		p.next()
		return &BoolLit{Pos: t.Pos, V: false}, nil
	case LBRACKET:
		p.next()
		ll := &ListLit{Pos: t.Pos}
		if !p.at(RBRACKET) {
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				ll.Elems = append(ll.Elems, e)
				if !p.accept(COMMA) {
					break
				}
			}
		}
		if _, err := p.expect(RBRACKET); err != nil {
			return nil, err
		}
		return ll, nil
	case LBRACE:
		return p.tupleLit()
	case LPAREN:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	case IDENT:
		p.next()
		if p.at(LPAREN) {
			p.next()
			call := &CallExpr{Pos: t.Pos, Name: t.Text}
			if !p.at(RPAREN) {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(COMMA) {
						break
					}
				}
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &Ident{Pos: t.Pos, Name: t.Text}, nil
	default:
		return nil, errf(t.Pos, "expected expression, found %v", t.Kind)
	}
}
