package spl

import (
	"strings"
	"testing"
)

func TestZeroValue(t *testing.T) {
	cases := []struct {
		typ  Type
		want Value
	}{
		{Boolean, false},
		{Int32, int64(0)},
		{Int64, int64(0)},
		{Float64, float64(0)},
		{RString, ""},
		{Timestamp, ""},
	}
	for _, tc := range cases {
		if got := zeroValue(tc.typ); got != tc.want {
			t.Errorf("zeroValue(%s) = %v, want %v", tc.typ, got, tc.want)
		}
	}
	if got := zeroValue(ListType{Elem: Int64}); got == nil {
		if _, ok := got.([]Value); false && !ok {
			t.Error("list zero not a []Value")
		}
	}
	tt := TupleType{Fields: []TField{{"a", Int64}, {"b", RString}}}
	tv := zeroValue(tt).(Tup)
	if tv["a"] != int64(0) || tv["b"] != "" {
		t.Errorf("tuple zero = %v", tv)
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{true, "true"},
		{false, "false"},
		{int64(-5), "-5"},
		{float64(2.5), "2.5"},
		{"hi", "hi"},
		{[]Value{int64(1), int64(2)}, "[1,2]"},
		{Tup{"b": int64(2), "a": int64(1)}, "{a=1,b=2}"},
		{nil, "<nil>"},
	}
	for _, tc := range cases {
		if got := formatValue(tc.v); got != tc.want {
			t.Errorf("formatValue(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestFormatTupleOrder(t *testing.T) {
	tt := TupleType{Fields: []TField{{"z", Int64}, {"a", RString}}}
	got := formatTuple(Tup{"a": "x", "z": int64(9)}, tt)
	if got != "9,x" {
		t.Errorf("formatTuple = %q, want declared field order 9,x", got)
	}
}

func TestValueEq(t *testing.T) {
	if !valueEq([]Value{int64(1)}, []Value{int64(1)}) {
		t.Error("equal lists compared unequal")
	}
	if valueEq([]Value{int64(1)}, []Value{int64(2)}) {
		t.Error("unequal lists compared equal")
	}
	if valueEq([]Value{int64(1)}, []Value{int64(1), int64(2)}) {
		t.Error("different-length lists compared equal")
	}
	if !valueEq(Tup{"a": int64(1)}, Tup{"a": int64(1)}) {
		t.Error("equal tuples compared unequal")
	}
	if valueEq(Tup{"a": int64(1)}, Tup{"a": int64(2)}) {
		t.Error("unequal tuples compared equal")
	}
	if valueEq(int64(1), "1") {
		t.Error("cross-type values compared equal")
	}
}

func TestRuntimeErrorFormatting(t *testing.T) {
	err := rtErrf(Pos{Line: 3, Col: 7}, "boom %d", 42)
	if !strings.Contains(err.Error(), "3:7") || !strings.Contains(err.Error(), "boom 42") {
		t.Errorf("RuntimeError format %q", err.Error())
	}
}

func TestTypeStrings(t *testing.T) {
	cases := map[string]Type{
		"boolean":                   Boolean,
		"int64":                     Int64,
		"list<rstring>":             ListType{Elem: RString},
		"tuple<int64 a, rstring b>": TupleType{Fields: []TField{{"a", Int64}, {"b", RString}}},
		"list<list<int64>>":         ListType{Elem: ListType{Elem: Int64}},
	}
	for want, typ := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%T String() = %q, want %q", typ, got, want)
		}
	}
}

func TestAssignable(t *testing.T) {
	if !assignable(Int64, Int32) || !assignable(Int32, Int64) {
		t.Error("integer widening rejected")
	}
	if assignable(Int64, Float64) || assignable(RString, Timestamp) {
		t.Error("cross-kind assignment accepted")
	}
	if !assignable(ListType{Elem: Int64}, ListType{Elem: Int64}) {
		t.Error("identical list types rejected")
	}
	if assignable(ListType{Elem: Int64}, ListType{Elem: RString}) {
		t.Error("mismatched list element accepted")
	}
}
