package spl

// frame.go is the allocation-free payload store behind the VM's emit
// path. The closure runtime's payload is Tup — a map — which costs a
// map allocation plus per-field interface boxing on every fresh emit
// (the 3 allocs/op BENCH_vm.json used to show on the scalar VM path).
// A Frame amortizes that: one columnar arena per ~256 emitted rows,
// typed column slices (no boxing), and payload refs that are interior
// pointers into the frame's own Rec table — so the per-row cost of a
// fresh emit is a few column stores and zero allocations.
//
// Frames are write-once: the store appends rows and never mutates or
// reuses filled ones, so a Rec riding on an emitted tuple is immutable
// and safe to read from any thread, exactly like a Tup built fresh per
// tuple. When a frame fills, the store drops its reference and starts
// a new one; the old frame lives for as long as any of its Recs do and
// is collected with them.

import (
	"streams/internal/vm"
)

// frameCap is the row capacity of one frame: large enough to amortize
// the frame's own allocations to well under one per row, small enough
// that a mostly-dead frame pinned by one long-lived Rec stays cheap.
const frameCap = 256

// frameLane is one column; exactly one of the slices is non-nil,
// chosen by the field's kind (bools share the int lane as 0/1).
type frameLane struct {
	i []int64
	f []float64
	s []string
}

// Frame is a columnar batch of emitted payloads.
type Frame struct {
	fields []vm.Field
	lanes  []frameLane
	recs   []Rec
	used   int
}

// Rec is one row of a Frame — the payload a VM fresh emit puts in
// tuple.Tuple.Ref. It satisfies the same read access the closure
// path's Tup does, via Get or a full Tup materialization.
type Rec struct {
	f   *Frame
	row int32
}

// Get returns the named attribute as a boxed Value (bool for KBool,
// like Tup), or nil when the attribute does not exist.
func (r *Rec) Get(name string) Value {
	f := r.f
	for i := range f.fields {
		if f.fields[i].Name == name {
			return r.col(i)
		}
	}
	return nil
}

// col boxes column i of the row per the field's kind.
func (r *Rec) col(i int) Value {
	fd := &r.f.fields[i]
	ln := &r.f.lanes[i]
	switch fd.Kind {
	case vm.KInt:
		return ln.i[r.row]
	case vm.KFloat:
		return ln.f[r.row]
	case vm.KStr:
		return ln.s[r.row]
	default:
		return ln.i[r.row] != 0
	}
}

// Tup materializes the row as a Tup for closure-path consumers
// (sinks, aggregates, dedup). This is the one place the map cost
// comes back — paid only at boundaries that need a map, never on the
// VM hot path.
func (r *Rec) Tup() Tup {
	f := r.f
	tv := make(Tup, len(f.fields))
	for i := range f.fields {
		tv[f.fields[i].Name] = r.col(i)
	}
	return tv
}

// load copies the row into a slot window per the requested layout —
// the Rec half of tupCodec.Load. The positional fast path covers the
// overwhelmingly common case of the producer's out layout flowing
// unchanged into the consumer's in layout; a name/kind mismatch falls
// back to a by-name scan and panics on a genuinely missing or
// retyped attribute, exactly as the Tup path's type assertion would.
func (r *Rec) load(in vm.Layout, slots []vm.Val) {
	f := r.f
	row := r.row
	for i := range in.Fields {
		fd := &in.Fields[i]
		j := i
		if j >= len(f.fields) || f.fields[j].Name != fd.Name {
			j = -1
			for k := range f.fields {
				if f.fields[k].Name == fd.Name {
					j = k
					break
				}
			}
			if j < 0 {
				panic("spl: rec payload missing attribute " + fd.Name)
			}
		}
		have := f.fields[j].Kind
		ln := &f.lanes[j]
		switch fd.Kind {
		case vm.KInt, vm.KBool:
			if have != vm.KInt && have != vm.KBool {
				panic("spl: rec attribute " + fd.Name + " is " + have.String() + ", want " + fd.Kind.String())
			}
			slots[i] = vm.Val{I: ln.i[row]}
		case vm.KFloat:
			if have != vm.KFloat {
				panic("spl: rec attribute " + fd.Name + " is " + have.String() + ", want float")
			}
			slots[i] = vm.Val{F: ln.f[row]}
		default:
			if have != vm.KStr {
				panic("spl: rec attribute " + fd.Name + " is " + have.String() + ", want str")
			}
			slots[i] = vm.Val{S: ln.s[row]}
		}
	}
}

// newFrame allocates a frame for one layout.
func newFrame(out vm.Layout) *Frame {
	f := &Frame{
		fields: out.Fields,
		lanes:  make([]frameLane, len(out.Fields)),
		recs:   make([]Rec, frameCap),
	}
	for i := range out.Fields {
		switch out.Fields[i].Kind {
		case vm.KFloat:
			f.lanes[i].f = make([]float64, frameCap)
		case vm.KStr:
			f.lanes[i].s = make([]string, frameCap)
		default:
			f.lanes[i].i = make([]int64, frameCap)
		}
	}
	return f
}

// frameStore is the vm.BatchStore a tupCodec hands each machine: a
// single-threaded appender that packs fresh emits into frames.
type frameStore struct {
	f *Frame
}

// Append implements vm.BatchStore.
func (s *frameStore) Append(vals []vm.Val, out vm.Layout) any {
	f := s.f
	if f == nil || f.used == frameCap || !layoutShared(f.fields, out.Fields) {
		f = newFrame(out)
		s.f = f
	}
	row := f.used
	f.used++
	for i := range f.fields {
		ln := &f.lanes[i]
		switch f.fields[i].Kind {
		case vm.KFloat:
			ln.f[row] = vals[i].F
		case vm.KStr:
			ln.s[row] = vals[i].S
		default:
			ln.i[row] = vals[i].I
		}
	}
	f.recs[row] = Rec{f: f, row: int32(row)}
	return &f.recs[row]
}

// layoutShared reports whether a frame built for fields can hold rows
// of out: the fast path is the identical backing array (layouts are
// per-program singletons), the slow path a full name/kind compare.
func layoutShared(fields, out []vm.Field) bool {
	if len(fields) != len(out) {
		return false
	}
	if len(out) == 0 || &fields[0] == &out[0] {
		return true
	}
	for i := range out {
		if fields[i] != out[i] {
			return false
		}
	}
	return true
}
