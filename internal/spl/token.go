// Package spl implements a compiler for a subset of the Streams
// Processing Language (SPL), the programming language of IBM Streams
// (§2.1 of the paper). The subset covers what the paper's examples use:
// composite operators with type and graph sections, stream declarations,
// builtin operator invocations (FileSource, Beacon, Custom, Filter,
// Work, FileSink, ...), Custom operator logic with onTuple statement
// blocks, and the @parallel and @threading annotations.
//
// The pipeline is conventional: Lex → Parse → Check (types and names) →
// Lower (composite expansion, @parallel replication, fusion into one
// graph.Graph). Custom logic and filter expressions are executed by a
// small tree-walking interpreter compiled into operator closures.
package spl

import "fmt"

// Kind classifies tokens.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INT
	FLOAT
	STRING

	// Punctuation.
	LBRACE   // {
	RBRACE   // }
	LPAREN   // (
	RPAREN   // )
	LBRACKET // [
	RBRACKET // ]
	LANGLE   // <
	RANGLE   // >
	COMMA    // ,
	SEMI     // ;
	COLON    // :
	DOT      // .
	AT       // @
	ASSIGN   // =
	QUESTION // ?

	// Operators.
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %
	NOT     // !
	EQ      // ==
	NEQ     // !=
	LEQ     // <=
	GEQ     // >=
	ANDAND  // &&
	OROR    // ||

	// Keywords.
	KWComposite
	KWGraph
	KWType
	KWParam
	KWLogic
	KWOnTuple
	KWStream
	KWAs
	KWOutput
	KWInput
	KWIf
	KWElse
	KWMutable
	KWSubmit
	KWTrue
	KWFalse
	KWWhile
	KWBreak
	KWContinue
	KWState
)

var kindNames = map[Kind]string{
	EOF: "end of file", IDENT: "identifier", INT: "integer", FLOAT: "float",
	STRING: "string", LBRACE: "'{'", RBRACE: "'}'", LPAREN: "'('",
	RPAREN: "')'", LBRACKET: "'['", RBRACKET: "']'", LANGLE: "'<'",
	RANGLE: "'>'", COMMA: "','", SEMI: "';'", COLON: "':'", DOT: "'.'",
	AT: "'@'", ASSIGN: "'='", QUESTION: "'?'", PLUS: "'+'", MINUS: "'-'",
	STAR: "'*'", SLASH: "'/'", PERCENT: "'%'", NOT: "'!'", EQ: "'=='",
	NEQ: "'!='", LEQ: "'<='", GEQ: "'>='", ANDAND: "'&&'", OROR: "'||'",
	KWComposite: "'composite'", KWGraph: "'graph'", KWType: "'type'",
	KWParam: "'param'", KWLogic: "'logic'", KWOnTuple: "'onTuple'",
	KWStream: "'stream'", KWAs: "'as'", KWOutput: "'output'",
	KWInput: "'input'", KWIf: "'if'", KWElse: "'else'",
	KWMutable: "'mutable'", KWSubmit: "'submit'", KWTrue: "'true'",
	KWFalse: "'false'", KWWhile: "'while'", KWBreak: "'break'",
	KWContinue: "'continue'", KWState: "'state'",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"composite": KWComposite,
	"graph":     KWGraph,
	"type":      KWType,
	"param":     KWParam,
	"logic":     KWLogic,
	"onTuple":   KWOnTuple,
	"stream":    KWStream,
	"as":        KWAs,
	"output":    KWOutput,
	"input":     KWInput,
	"if":        KWIf,
	"else":      KWElse,
	"mutable":   KWMutable,
	"submit":    KWSubmit,
	"true":      KWTrue,
	"false":     KWFalse,
	"while":     KWWhile,
	"break":     KWBreak,
	"continue":  KWContinue,
	"state":     KWState,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

// String implements fmt.Stringer.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexeme.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

// Error is a compile error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
