package spl

import "testing"

// TestParamExprEvaluatedOnce pins the lowering-time fold cache for
// parameter expressions: every parameter is constant-folded exactly
// once per assignment, even when the operator probes it at more than
// one expected type (Throttle retries an integer rate after float64 —
// the retry must hit the cache, not re-evaluate).
func TestParamExprEvaluatedOnce(t *testing.T) {
	counts := map[string]int{}
	paramEvalHook = func(name string) { counts[name]++ }
	defer func() { paramEvalHook = nil }()

	const src = `
composite Main {
  graph
    stream<int64 x> N = Beacon() { param iterations: 2 + 3; }
    stream<int64 x> T = Throttle(N) { param rate: 50 * 2; }
    () as Out = FileSink(T) { param file: "/dev/null"; }
}
`
	if _, err := Compile(src, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"iterations", "rate", "file"} {
		if counts[name] != 1 {
			t.Errorf("parameter %q evaluated %d times, want exactly 1 (all: %v)",
				name, counts[name], counts)
		}
	}
}
