package spl

import (
	"fmt"

	"streams/internal/vm"
)

// This file lowers checked SPL expression ASTs and logic blocks to
// vm.Programs: the portable, fusable alternative to the closure
// evaluator in check.go. Compilation is best-effort — any construct
// outside the VM's scalar value model (lists, nested tuples, state
// clauses, non-whitelisted builtins, multi-port logic) aborts via
// errVMUnsupported and the operator keeps its closure path. The two
// paths must agree exactly on supported programs; vm_diff_test.go
// checks that property on random expressions.
//
// Attribute-index resolution and constant folding happen here, at
// compile time: input attributes become slot loads (no per-tuple map
// lookups) and call-free constant subexpressions are evaluated once
// through the same constEval the checker uses (never across calls, so
// spin()'s deliberate CPU burn is not folded away).

// errVMUnsupported aborts compilation; it carries the construct for
// splc -dump-vm diagnostics.
type errVMUnsupported struct{ reason string }

func unsupported(format string, args ...any) {
	panic(errVMUnsupported{fmt.Sprintf(format, args...)})
}

// vmKindOf maps an SPL scalar type onto a VM lane.
func vmKindOf(t Type) (vm.Kind, bool) {
	switch {
	case t == nil:
		return 0, false
	case t.equal(Boolean):
		return vm.KBool, true
	case isInt(t):
		return vm.KInt, true
	case t.equal(Float64):
		return vm.KFloat, true
	case t.equal(RString), t.equal(Timestamp):
		return vm.KStr, true
	default:
		return 0, false
	}
}

// vmLayoutOf maps a tuple type onto a slot layout, attribute order
// preserved. Fails when any attribute is non-scalar.
func vmLayoutOf(tt TupleType) (vm.Layout, bool) {
	fs := make([]vm.Field, len(tt.Fields))
	for i, f := range tt.Fields {
		k, ok := vmKindOf(f.Type)
		if !ok {
			return vm.Layout{}, false
		}
		fs[i] = vm.Field{Name: f.Name, Kind: k}
	}
	return vm.Layout{Fields: fs}, true
}

// vmc is one compilation: a builder plus the scope mapping names to
// slots. Locals get fresh slots per declaration; lexical shadowing is
// handled by an explicit scope stack.
type vmc struct {
	b      *vm.Builder
	scopes []map[string]vmSlot
	nslots int32
	// loop frames: pcs of break/continue jumps awaiting patching.
	breaks [][]int32
	conts  []int32 // loop-start pcs, one per open loop
	// out window, for submit lowering (custom operators only).
	outBase   int32
	outLayout vm.Layout
	outStream string
}

type vmSlot struct {
	slot int32
	kind vm.Kind
}

func newVMC() *vmc {
	return &vmc{b: vm.NewBuilder(), scopes: []map[string]vmSlot{{}}}
}

func (c *vmc) push()            { c.scopes = append(c.scopes, map[string]vmSlot{}) }
func (c *vmc) pop()             { c.scopes = c.scopes[:len(c.scopes)-1] }
func (c *vmc) alloc() (s int32) { s = c.nslots; c.nslots++; return }
func (c *vmc) bind(name string, s vmSlot) {
	c.scopes[len(c.scopes)-1][name] = s
}
func (c *vmc) lookup(name string) (vmSlot, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s, true
		}
	}
	return vmSlot{}, false
}

// bindFields allocates the input window: one slot per attribute, in
// layout order, bound under the bare attribute names.
func (c *vmc) bindFields(tt TupleType) int32 {
	base := c.nslots
	for _, f := range tt.Fields {
		k, ok := vmKindOf(f.Type)
		if !ok {
			unsupported("attribute %s has non-scalar type %s", f.Name, f.Type)
		}
		c.bind(f.Name, vmSlot{slot: c.alloc(), kind: k})
	}
	return base
}

// tryFold emits a constant when e is a call-free expression the
// checker's constEval can evaluate (so literals, arithmetic on
// literals, folded parameters). Calls are never folded: spin() burns
// CPU per tuple by design, and folding would erase the burn.
func (c *vmc) tryFold(e Expr) (vm.Kind, bool) {
	if hasCall(e) {
		return 0, false
	}
	v, err := constEval(e)
	if err != nil {
		return 0, false
	}
	switch v := v.(type) {
	case int64:
		c.b.ConstI(v)
		return vm.KInt, true
	case float64:
		c.b.ConstF(v)
		return vm.KFloat, true
	case string:
		c.b.ConstS(v)
		return vm.KStr, true
	case bool:
		c.b.ConstB(v)
		return vm.KBool, true
	default:
		return 0, false
	}
}

func hasCall(e Expr) bool {
	switch e := e.(type) {
	case *CallExpr:
		return true
	case *UnaryExpr:
		return hasCall(e.X)
	case *BinaryExpr:
		return hasCall(e.X) || hasCall(e.Y)
	case *CondExpr:
		return hasCall(e.C) || hasCall(e.T) || hasCall(e.F)
	case *AttrExpr:
		return hasCall(e.X)
	case *IndexExpr:
		return hasCall(e.X) || hasCall(e.I)
	case *SliceExpr:
		return hasCall(e.X) || (e.Lo != nil && hasCall(e.Lo)) || (e.Hi != nil && hasCall(e.Hi))
	case *ListLit:
		for _, el := range e.Elems {
			if hasCall(el) {
				return true
			}
		}
	case *TupleLit:
		for _, v := range e.Values {
			if hasCall(v) {
				return true
			}
		}
	}
	return false
}

// expr compiles e, pushing its value, and returns its VM kind.
func (c *vmc) expr(e Expr) vm.Kind {
	if k, ok := c.tryFold(e); ok {
		return k
	}
	switch e := e.(type) {
	case *IntLit:
		c.b.ConstI(e.V)
		return vm.KInt
	case *FloatLit:
		c.b.ConstF(e.V)
		return vm.KFloat
	case *StringLit:
		c.b.ConstS(e.V)
		return vm.KStr
	case *BoolLit:
		c.b.ConstB(e.V)
		return vm.KBool
	case *Ident:
		s, ok := c.lookup(e.Name)
		if !ok {
			unsupported("identifier %s (whole-tuple or out-of-scope reference)", e.Name)
		}
		c.b.Ins(vm.OpLoad, s.slot, 0)
		return s.kind
	case *AttrExpr:
		// Only input-stream attribute access (S.x) maps onto slots;
		// the checker bound the bare field names to the same values,
		// so both spellings hit one slot.
		id, ok := e.X.(*Ident)
		if !ok {
			unsupported("attribute access on a non-stream expression")
		}
		if _, isField := c.lookup(id.Name); isField {
			unsupported("attribute access on local or field %s", id.Name)
		}
		s, ok := c.lookup(id.Name + "." + e.Name)
		if !ok {
			unsupported("attribute %s.%s", id.Name, e.Name)
		}
		c.b.Ins(vm.OpLoad, s.slot, 0)
		return s.kind
	case *UnaryExpr:
		switch e.Op {
		case NOT:
			if k := c.expr(e.X); k != vm.KBool {
				unsupported("! on %s", k)
			}
			c.b.Op(vm.OpNotB)
			return vm.KBool
		case MINUS:
			switch k := c.expr(e.X); k {
			case vm.KInt:
				c.b.Op(vm.OpNegI)
				return vm.KInt
			case vm.KFloat:
				c.b.Op(vm.OpNegF)
				return vm.KFloat
			default:
				unsupported("unary - on %s", k)
			}
		}
		unsupported("unary operator")
	case *BinaryExpr:
		return c.binary(e)
	case *CondExpr:
		if k := c.expr(e.C); k != vm.KBool {
			unsupported("?: condition is %s", k)
		}
		jf := c.b.Jump(vm.OpJumpIfFalse)
		kt := c.expr(e.T)
		jend := c.b.Jump(vm.OpJump)
		c.b.Patch(jf)
		kf := c.expr(e.F)
		c.b.Patch(jend)
		if kt != kf {
			unsupported("?: branches disagree (%s vs %s)", kt, kf)
		}
		return kt
	case *CallExpr:
		return c.call(e)
	}
	unsupported("%T expression", e)
	panic("unreachable")
}

func (c *vmc) binary(e *BinaryExpr) vm.Kind {
	switch e.Op {
	case ANDAND:
		if k := c.expr(e.X); k != vm.KBool {
			unsupported("&& on %s", k)
		}
		jf := c.b.Jump(vm.OpJumpIfFalse)
		if k := c.expr(e.Y); k != vm.KBool {
			unsupported("&& on %s", k)
		}
		jend := c.b.Jump(vm.OpJump)
		c.b.Patch(jf)
		c.b.ConstB(false)
		c.b.Patch(jend)
		return vm.KBool
	case OROR:
		if k := c.expr(e.X); k != vm.KBool {
			unsupported("|| on %s", k)
		}
		jt := c.b.Jump(vm.OpJumpIfTrue)
		if k := c.expr(e.Y); k != vm.KBool {
			unsupported("|| on %s", k)
		}
		jend := c.b.Jump(vm.OpJump)
		c.b.Patch(jt)
		c.b.ConstB(true)
		c.b.Patch(jend)
		return vm.KBool
	}
	kx := c.expr(e.X)
	ky := c.expr(e.Y)
	if kx != ky {
		unsupported("binary %v on %s and %s", e.Op, kx, ky)
	}
	type ops3 struct{ i, f, s vm.Op }
	pick := func(o ops3) vm.Op {
		switch kx {
		case vm.KInt:
			return o.i
		case vm.KFloat:
			return o.f
		case vm.KStr:
			return o.s
		}
		return vm.OpNop
	}
	var op vm.Op
	ret := kx
	switch e.Op {
	case PLUS:
		op = pick(ops3{vm.OpAddI, vm.OpAddF, vm.OpCatS})
	case MINUS:
		op = pick(ops3{i: vm.OpSubI, f: vm.OpSubF})
	case STAR:
		op = pick(ops3{i: vm.OpMulI, f: vm.OpMulF})
	case SLASH:
		op = pick(ops3{i: vm.OpDivI, f: vm.OpDivF})
	case PERCENT:
		op = pick(ops3{i: vm.OpModI})
	case LANGLE:
		op, ret = pick(ops3{vm.OpLtI, vm.OpLtF, vm.OpLtS}), vm.KBool
	case RANGLE:
		op, ret = pick(ops3{vm.OpGtI, vm.OpGtF, vm.OpGtS}), vm.KBool
	case LEQ:
		op, ret = pick(ops3{vm.OpLeI, vm.OpLeF, vm.OpLeS}), vm.KBool
	case GEQ:
		op, ret = pick(ops3{vm.OpGeI, vm.OpGeF, vm.OpGeS}), vm.KBool
	case EQ:
		if kx == vm.KBool {
			op = vm.OpEqI
		} else {
			op = pick(ops3{vm.OpEqI, vm.OpEqF, vm.OpEqS})
		}
		ret = vm.KBool
	case NEQ:
		if kx == vm.KBool {
			op = vm.OpNeI
		} else {
			op = pick(ops3{vm.OpNeI, vm.OpNeF, vm.OpNeS})
		}
		ret = vm.KBool
	default:
		unsupported("binary operator %v", e.Op)
	}
	if op == vm.OpNop {
		unsupported("binary %v on %s", e.Op, kx)
	}
	c.b.Op(op)
	return ret
}

// vmBuiltinSigs whitelists the builtins the VM can call, keyed by
// name, listing each accepted argument-kind signature and its result.
// The bridge in bridge_vm.go registers one vm builtin per signature
// under the mangled name ("substring:sii"), wrapping the exact eval
// functions the closure path uses — shared semantics by construction.
var vmBuiltinSigs = map[string][]vmSig{
	"length":        {{args: "s", ret: vm.KInt}},
	"lower":         {{args: "s", ret: vm.KStr}},
	"upper":         {{args: "s", ret: vm.KStr}},
	"substring":     {{args: "sii", ret: vm.KStr}},
	"findFirst":     {{args: "ssi", ret: vm.KInt}},
	"toInt":         {{args: "s", ret: vm.KInt}},
	"toFloat64":     {{args: "i", ret: vm.KFloat}, {args: "f", ret: vm.KFloat}},
	"toString":      {{args: "i", ret: vm.KStr}, {args: "f", ret: vm.KStr}, {args: "s", ret: vm.KStr}, {args: "b", ret: vm.KStr}},
	"makeDate":      {{args: "s", ret: vm.KStr}},
	"makeTime":      {{args: "s", ret: vm.KStr}},
	"makeTimestamp": {{args: "ss", ret: vm.KStr}},
	"spin":          {{args: "i", ret: vm.KFloat}},
}

type vmSig struct {
	args string // one kind letter per argument: i, f, s, b
	ret  vm.Kind
}

func kindLetter(k vm.Kind) byte {
	switch k {
	case vm.KInt:
		return 'i'
	case vm.KFloat:
		return 'f'
	case vm.KStr:
		return 's'
	default:
		return 'b'
	}
}

func (c *vmc) call(e *CallExpr) vm.Kind {
	sigs, ok := vmBuiltinSigs[e.Name]
	if !ok {
		unsupported("builtin %s", e.Name)
	}
	letters := make([]byte, len(e.Args))
	for i, a := range e.Args {
		letters[i] = kindLetter(c.expr(a))
	}
	for _, sig := range sigs {
		if sig.args == string(letters) {
			c.b.Call(e.Name+":"+sig.args, int32(len(e.Args)))
			return sig.ret
		}
	}
	unsupported("builtin %s(%s)", e.Name, letters)
	panic("unreachable")
}

// stmt compiles one statement. Statements are stack-balanced: each
// leaves the operand stack exactly as it found it.
func (c *vmc) stmt(s Stmt) {
	switch s := s.(type) {
	case *DeclStmt:
		t, err := resolveType(&s.Type, nil)
		if err != nil {
			unsupported("declared type: %v", err)
		}
		k, ok := vmKindOf(t)
		if !ok {
			unsupported("declared type %s", t)
		}
		slot := c.alloc()
		if s.Init != nil {
			if ki := c.expr(s.Init); ki != k {
				unsupported("initializer kind %s for %s", ki, k)
			}
		} else {
			c.zero(k)
		}
		c.b.Ins(vm.OpStore, slot, 0)
		c.bind(s.Name, vmSlot{slot: slot, kind: k})
	case *AssignStmt:
		id, ok := s.Target.(*Ident)
		if !ok {
			unsupported("assignment to %T", s.Target)
		}
		sl, ok := c.lookup(id.Name)
		if !ok {
			unsupported("assignment to unknown %s", id.Name)
		}
		// Input attributes are rebindable in the closure environment
		// but the stream-name alias (S.x) keeps observing the original
		// tuple there; slots cannot reproduce that split view, so
		// assignment to input attributes stays on the closure path.
		if c.isInputField(id.Name) {
			unsupported("assignment to input attribute %s", id.Name)
		}
		if k := c.expr(s.Value); k != sl.kind {
			unsupported("assignment kind %s to %s", k, sl.kind)
		}
		c.b.Ins(vm.OpStore, sl.slot, 0)
	case *IfStmt:
		if k := c.expr(s.Cond); k != vm.KBool {
			unsupported("if condition is %s", k)
		}
		jf := c.b.Jump(vm.OpJumpIfFalse)
		c.block(s.Then)
		if s.Else != nil {
			jend := c.b.Jump(vm.OpJump)
			c.b.Patch(jf)
			c.block(s.Else)
			c.b.Patch(jend)
		} else {
			c.b.Patch(jf)
		}
	case *WhileStmt:
		start := c.b.Here()
		if k := c.expr(s.Cond); k != vm.KBool {
			unsupported("while condition is %s", k)
		}
		jf := c.b.Jump(vm.OpJumpIfFalse)
		c.breaks = append(c.breaks, nil)
		c.conts = append(c.conts, start)
		c.block(s.Body)
		c.b.PatchTo(c.b.Jump(vm.OpJump), start)
		c.b.Patch(jf)
		for _, pc := range c.breaks[len(c.breaks)-1] {
			c.b.Patch(pc)
		}
		c.breaks = c.breaks[:len(c.breaks)-1]
		c.conts = c.conts[:len(c.conts)-1]
	case *BreakStmt:
		if len(c.breaks) == 0 {
			unsupported("break outside loop")
		}
		pc := c.b.Jump(vm.OpJump)
		c.breaks[len(c.breaks)-1] = append(c.breaks[len(c.breaks)-1], pc)
	case *ContinueStmt:
		if len(c.conts) == 0 {
			unsupported("continue outside loop")
		}
		c.b.PatchTo(c.b.Jump(vm.OpJump), c.conts[len(c.conts)-1])
	case *SubmitStmt:
		c.submit(s)
	case *ExprStmt:
		c.expr(s.X)
		c.b.Op(vm.OpPop)
	default:
		unsupported("%T statement", s)
	}
}

// isInputField reports whether name resolves to an input-window slot
// (bound in the outermost scope) rather than a local.
func (c *vmc) isInputField(name string) bool {
	for i := len(c.scopes) - 1; i >= 1; i-- {
		if _, ok := c.scopes[i][name]; ok {
			return false
		}
	}
	_, ok := c.scopes[0][name]
	return ok
}

func (c *vmc) zero(k vm.Kind) {
	switch k {
	case vm.KInt, vm.KBool:
		c.b.ConstI(0)
	case vm.KFloat:
		c.b.ConstF(0)
	case vm.KStr:
		c.b.ConstS("")
	}
}

// submit lowers submit({a = e, ...}, Out): literal attributes are
// evaluated in source order (panic order matches the closure path),
// unnamed attributes take their zero values — the same fill the
// closure emit callback performs — then the segment emits.
func (c *vmc) submit(s *SubmitStmt) {
	if s.Stream != c.outStream {
		unsupported("submit to %s", s.Stream)
	}
	idx := map[string]int{}
	for i, f := range c.outLayout.Fields {
		idx[f.Name] = i
	}
	seen := map[string]bool{}
	for i, name := range s.Tuple.Names {
		fi, ok := idx[name]
		if !ok || seen[name] {
			unsupported("submit attribute %s", name)
		}
		seen[name] = true
		if k := c.expr(s.Tuple.Values[i]); k != c.outLayout.Fields[fi].Kind {
			unsupported("submit attribute %s kind %s", name, k)
		}
		c.b.Ins(vm.OpStore, c.outBase+int32(fi), 0)
	}
	for fi, f := range c.outLayout.Fields {
		if !seen[f.Name] {
			c.zero(f.Kind)
			c.b.Ins(vm.OpStore, c.outBase+int32(fi), 0)
		}
	}
	c.b.Op(vm.OpEmit)
}

func (c *vmc) block(blk *Block) {
	c.push()
	for _, s := range blk.Stmts {
		c.stmt(s)
	}
	c.pop()
}

// compile runs fn, converting errVMUnsupported panics into a nil
// program — the closure-fallback signal.
func compileVM(fn func() (*vm.Program, error)) *vm.Program {
	var p *vm.Program
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(errVMUnsupported); ok {
					p = nil
					err = nil
					return
				}
				panic(r)
			}
		}()
		p, err = fn()
	}()
	if err != nil {
		return nil
	}
	return p
}

// compileFilterVM compiles a Filter predicate into a forwarding
// program: out window aliases in window, a false predicate drops.
func compileFilterVM(name string, pred Expr, in TupleType) *vm.Program {
	return compileVM(func() (*vm.Program, error) {
		layout, ok := vmLayoutOf(in)
		if !ok {
			return nil, nil
		}
		c := newVMC()
		base := c.bindFields(in)
		if k := c.expr(pred); k != vm.KBool {
			unsupported("predicate kind %s", k)
		}
		jf := c.b.Jump(vm.OpJumpIfFalse)
		c.b.Op(vm.OpEmit)
		c.b.Patch(jf)
		n := int32(len(in.Fields))
		return c.b.Finish(vm.Seg{
			InBase: base, NIn: n, OutBase: base, NOut: n,
			Name: name, Out: layout,
		}, layout, c.nslots)
	})
}

// compileCustomVM compiles a stateless single-input single-output
// Custom operator's onTuple block into a fresh-emitting program.
func compileCustomVM(name string, blk *Block, in TupleType, inName string, out TupleType, outStream string) *vm.Program {
	return compileVM(func() (*vm.Program, error) {
		inLayout, ok := vmLayoutOf(in)
		if !ok {
			return nil, nil
		}
		outLayout, ok := vmLayoutOf(out)
		if !ok {
			return nil, nil
		}
		for _, f := range in.Fields {
			if f.Name == inName {
				// The stream-name alias shadows a field; the closure
				// scope would resolve the name to the whole tuple.
				unsupported("stream name %s collides with an attribute", inName)
			}
		}
		c := newVMC()
		inBase := c.bindFields(in)
		// Stream-qualified access (S.x) resolves to the same slots.
		for _, f := range in.Fields {
			s, _ := c.lookup(f.Name)
			c.bind(inName+"."+f.Name, s)
		}
		c.outBase = c.nslots
		for range out.Fields {
			c.alloc()
		}
		c.outLayout = outLayout
		c.outStream = outStream
		c.block(blk)
		return c.b.Finish(vm.Seg{
			InBase: inBase, NIn: int32(len(in.Fields)),
			OutBase: c.outBase, NOut: int32(len(out.Fields)),
			Fresh: true, Name: name, Out: outLayout,
		}, inLayout, c.nslots)
	})
}

// compileWorkVM compiles a Work operator: burn the configured flop
// cost (seeded by the tuple's sequence number, like the closure path)
// and forward.
func compileWorkVM(name string, cost int, typ TupleType) *vm.Program {
	return compileVM(func() (*vm.Program, error) {
		layout, ok := vmLayoutOf(typ)
		if !ok {
			return nil, nil
		}
		c := newVMC()
		base := c.bindFields(typ)
		if cost > 0 {
			c.b.ConstI(int64(cost))
			c.b.Ins(vm.OpLoadSeq, 0, 0)
			c.b.Call("spin.work:ii", 2)
			c.b.Op(vm.OpPop)
		}
		c.b.Op(vm.OpEmit)
		n := int32(len(typ.Fields))
		return c.b.Finish(vm.Seg{
			InBase: base, NIn: n, OutBase: base, NOut: n,
			Name: name, Out: layout,
		}, layout, c.nslots)
	})
}

// compileExprVM wraps a bare checked expression as a fresh program
// with one output attribute "r" — the harness the differential test
// drives, and the shape parameter folding reuses.
func compileExprVM(e Expr, in TupleType, inName string) *vm.Program {
	return compileVM(func() (*vm.Program, error) {
		inLayout, ok := vmLayoutOf(in)
		if !ok {
			return nil, nil
		}
		c := newVMC()
		inBase := c.bindFields(in)
		if inName != "" {
			for _, f := range in.Fields {
				s, _ := c.lookup(f.Name)
				c.bind(inName+"."+f.Name, s)
			}
		}
		outSlot := c.alloc()
		k := c.expr(e)
		c.b.Ins(vm.OpStore, outSlot, 0)
		c.b.Op(vm.OpEmit)
		return c.b.Finish(vm.Seg{
			InBase: inBase, NIn: int32(len(in.Fields)),
			OutBase: outSlot, NOut: 1,
			Fresh: true, Name: "expr",
			Out: vm.Layout{Fields: []vm.Field{{Name: "r", Kind: k}}},
		}, inLayout, c.nslots)
	})
}
