package spl

import "fmt"

// The expression/statement checker and the tree-walking interpreter for
// Custom logic blocks and Filter predicates. Checking happens during
// lowering, once per composite instantiation, so input stream types are
// concrete (composites are checked monomorphically, like templates).

// cscope is a lexical scope for checking.
type cscope struct {
	parent *cscope
	vars   map[string]Type
	mut    map[string]bool
}

func newScope(parent *cscope) *cscope {
	return &cscope{parent: parent, vars: map[string]Type{}, mut: map[string]bool{}}
}

func (s *cscope) lookup(name string) (Type, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if t, ok := sc.vars[name]; ok {
			return t, true
		}
	}
	return nil, false
}

func (s *cscope) mutable(name string) bool {
	for sc := s; sc != nil; sc = sc.parent {
		if _, ok := sc.vars[name]; ok {
			return sc.mut[name]
		}
	}
	return false
}

func (s *cscope) define(pos Pos, name string, t Type, mutable bool) error {
	if _, exists := s.vars[name]; exists {
		return errf(pos, "%q already declared in this scope", name)
	}
	s.vars[name] = t
	s.mut[name] = mutable
	return nil
}

// blockCtx carries the submit targets available to a logic block and
// the checker's loop nesting depth (for break/continue).
type blockCtx struct {
	named map[string]TupleType // visible named types
	outs  map[string]TupleType // stream name → type, legal submit targets
	loops int
}

// checkExpr computes the type of e under scope sc.
func checkExpr(e Expr, sc *cscope) (Type, error) {
	switch x := e.(type) {
	case *IntLit:
		return Int64, nil
	case *FloatLit:
		return Float64, nil
	case *StringLit:
		return RString, nil
	case *BoolLit:
		return Boolean, nil
	case *Ident:
		t, ok := sc.lookup(x.Name)
		if !ok {
			return nil, errf(x.Pos, "undefined name %q", x.Name)
		}
		return t, nil
	case *AttrExpr:
		bt, err := checkExpr(x.X, sc)
		if err != nil {
			return nil, err
		}
		tt, ok := bt.(TupleType)
		if !ok {
			return nil, errf(x.Pos, "attribute access on non-tuple type %s", bt)
		}
		ft, ok := tt.Field(x.Name)
		if !ok {
			return nil, errf(x.Pos, "type %s has no attribute %q", tt, x.Name)
		}
		return ft, nil
	case *IndexExpr:
		bt, err := checkExpr(x.X, sc)
		if err != nil {
			return nil, err
		}
		lt, ok := bt.(ListType)
		if !ok {
			return nil, errf(x.Pos, "indexing non-list type %s", bt)
		}
		it, err := checkExpr(x.I, sc)
		if err != nil {
			return nil, err
		}
		if !isInt(it) {
			return nil, errf(x.Pos, "index has type %s, want an integer", it)
		}
		return lt.Elem, nil
	case *SliceExpr:
		bt, err := checkExpr(x.X, sc)
		if err != nil {
			return nil, err
		}
		if _, ok := bt.(ListType); !ok {
			return nil, errf(x.Pos, "slicing non-list type %s", bt)
		}
		for _, b := range []Expr{x.Lo, x.Hi} {
			if b == nil {
				continue
			}
			it, err := checkExpr(b, sc)
			if err != nil {
				return nil, err
			}
			if !isInt(it) {
				return nil, errf(x.Pos, "slice bound has type %s, want an integer", it)
			}
		}
		return bt, nil
	case *ListLit:
		if len(x.Elems) == 0 {
			return nil, errf(x.Pos, "cannot infer the type of an empty list literal")
		}
		et, err := checkExpr(x.Elems[0], sc)
		if err != nil {
			return nil, err
		}
		if et.equal(Int32) {
			et = Int64
		}
		for _, el := range x.Elems[1:] {
			t, err := checkExpr(el, sc)
			if err != nil {
				return nil, err
			}
			if !assignable(et, t) {
				return nil, errf(el.P(), "list element has type %s, want %s", t, et)
			}
		}
		return ListType{Elem: et}, nil
	case *CallExpr:
		b, ok := builtins[x.Name]
		if !ok {
			return nil, errf(x.Pos, "unknown function %q", x.Name)
		}
		args := make([]Type, len(x.Args))
		for i, a := range x.Args {
			t, err := checkExpr(a, sc)
			if err != nil {
				return nil, err
			}
			args[i] = t
		}
		t, err := b.check(x.Pos, args)
		if err != nil {
			return nil, errf(x.Pos, "%s: %v", x.Name, err.(*Error).Msg)
		}
		return t, nil
	case *UnaryExpr:
		t, err := checkExpr(x.X, sc)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case NOT:
			if !t.equal(Boolean) {
				return nil, errf(x.Pos, "operand of ! has type %s, want boolean", t)
			}
			return Boolean, nil
		case MINUS:
			if !isInt(t) && !t.equal(Float64) {
				return nil, errf(x.Pos, "operand of unary - has type %s, want a number", t)
			}
			return t, nil
		}
		return nil, errf(x.Pos, "unsupported unary operator %v", x.Op)
	case *BinaryExpr:
		lt, err := checkExpr(x.X, sc)
		if err != nil {
			return nil, err
		}
		rt, err := checkExpr(x.Y, sc)
		if err != nil {
			return nil, err
		}
		numeric := func() (Type, error) {
			switch {
			case isInt(lt) && isInt(rt):
				return Int64, nil
			case lt.equal(Float64) && rt.equal(Float64):
				return Float64, nil
			default:
				return nil, errf(x.Pos, "operands of %v have types %s and %s", x.Op, lt, rt)
			}
		}
		switch x.Op {
		case PLUS:
			if lt.equal(RString) && rt.equal(RString) {
				return RString, nil
			}
			return numeric()
		case MINUS, STAR, SLASH:
			return numeric()
		case PERCENT:
			if isInt(lt) && isInt(rt) {
				return Int64, nil
			}
			return nil, errf(x.Pos, "operands of %% have types %s and %s, want integers", lt, rt)
		case LANGLE, RANGLE, LEQ, GEQ:
			ok := (isInt(lt) && isInt(rt)) ||
				(lt.equal(Float64) && rt.equal(Float64)) ||
				(lt.equal(RString) && rt.equal(RString))
			if !ok {
				return nil, errf(x.Pos, "cannot order %s and %s", lt, rt)
			}
			return Boolean, nil
		case EQ, NEQ:
			if !assignable(lt, rt) && !assignable(rt, lt) {
				return nil, errf(x.Pos, "cannot compare %s and %s", lt, rt)
			}
			return Boolean, nil
		case ANDAND, OROR:
			if !lt.equal(Boolean) || !rt.equal(Boolean) {
				return nil, errf(x.Pos, "operands of %v have types %s and %s, want booleans", x.Op, lt, rt)
			}
			return Boolean, nil
		}
		return nil, errf(x.Pos, "unsupported binary operator %v", x.Op)
	case *CondExpr:
		ct, err := checkExpr(x.C, sc)
		if err != nil {
			return nil, err
		}
		if !ct.equal(Boolean) {
			return nil, errf(x.Pos, "ternary condition has type %s, want boolean", ct)
		}
		tt, err := checkExpr(x.T, sc)
		if err != nil {
			return nil, err
		}
		ft, err := checkExpr(x.F, sc)
		if err != nil {
			return nil, err
		}
		switch {
		case assignable(tt, ft):
			return tt, nil
		case assignable(ft, tt):
			return ft, nil
		default:
			return nil, errf(x.Pos, "ternary branches have incompatible types %s and %s", tt, ft)
		}
	case *TupleLit:
		return nil, errf(x.Pos, "tuple literals may only appear as the first argument of submit")
	default:
		return nil, errf(e.P(), "unsupported expression %T", e)
	}
}

// checkBlock checks a statement block under the given scope and context.
func checkBlock(b *Block, sc *cscope, ctx *blockCtx) error {
	for _, st := range b.Stmts {
		if err := checkStmt(st, sc, ctx); err != nil {
			return err
		}
	}
	return nil
}

func checkStmt(st Stmt, sc *cscope, ctx *blockCtx) error {
	switch s := st.(type) {
	case *DeclStmt:
		dt, err := resolveType(&s.Type, ctx.named)
		if err != nil {
			return err
		}
		// Allow an empty list literal only where a declared list type
		// provides the element type.
		if ll, ok := s.Init.(*ListLit); ok && len(ll.Elems) == 0 {
			if _, isList := dt.(ListType); isList {
				return sc.define(s.Pos, s.Name, dt, s.Mutable)
			}
		}
		it, err := checkExpr(s.Init, sc)
		if err != nil {
			return err
		}
		if !assignable(dt, it) {
			return errf(s.Pos, "cannot initialize %s %q with %s", dt, s.Name, it)
		}
		return sc.define(s.Pos, s.Name, dt, s.Mutable)
	case *AssignStmt:
		root, err := assignRoot(s.Target)
		if err != nil {
			return err
		}
		if _, ok := sc.lookup(root.Name); !ok {
			return errf(root.Pos, "undefined name %q", root.Name)
		}
		if !sc.mutable(root.Name) {
			return errf(s.Pos, "cannot assign to %q: declare it 'mutable'", root.Name)
		}
		tt, err := checkExpr(s.Target, sc)
		if err != nil {
			return err
		}
		vt, err := checkExpr(s.Value, sc)
		if err != nil {
			return err
		}
		if !assignable(tt, vt) {
			return errf(s.Pos, "cannot assign %s to %s", vt, tt)
		}
		return nil
	case *IfStmt:
		ct, err := checkExpr(s.Cond, sc)
		if err != nil {
			return err
		}
		if !ct.equal(Boolean) {
			return errf(s.Pos, "if condition has type %s, want boolean", ct)
		}
		if err := checkBlock(s.Then, newScope(sc), ctx); err != nil {
			return err
		}
		if s.Else != nil {
			return checkBlock(s.Else, newScope(sc), ctx)
		}
		return nil
	case *SubmitStmt:
		ot, ok := ctx.outs[s.Stream]
		if !ok {
			return errf(s.Pos, "submit target %q is not an output stream of this operator", s.Stream)
		}
		seen := map[string]bool{}
		for i, name := range s.Tuple.Names {
			ft, ok := ot.Field(name)
			if !ok {
				return errf(s.Tuple.Values[i].P(), "output type of %q has no attribute %q", s.Stream, name)
			}
			if seen[name] {
				return errf(s.Tuple.Values[i].P(), "duplicate attribute %q in tuple literal", name)
			}
			seen[name] = true
			vt, err := checkExpr(s.Tuple.Values[i], sc)
			if err != nil {
				return err
			}
			if !assignable(ft, vt) {
				return errf(s.Tuple.Values[i].P(), "attribute %q has type %s, want %s", name, vt, ft)
			}
		}
		return nil
	case *ExprStmt:
		if _, ok := s.X.(*CallExpr); !ok {
			return errf(s.Pos, "expression statement must be a function call")
		}
		_, err := checkExpr(s.X, sc)
		return err
	case *WhileStmt:
		ct, err := checkExpr(s.Cond, sc)
		if err != nil {
			return err
		}
		if !ct.equal(Boolean) {
			return errf(s.Pos, "while condition has type %s, want boolean", ct)
		}
		ctx.loops++
		err = checkBlock(s.Body, newScope(sc), ctx)
		ctx.loops--
		return err
	case *BreakStmt:
		if ctx.loops == 0 {
			return errf(s.Pos, "break outside a loop")
		}
		return nil
	case *ContinueStmt:
		if ctx.loops == 0 {
			return errf(s.Pos, "continue outside a loop")
		}
		return nil
	default:
		return errf(st.P(), "unsupported statement %T", st)
	}
}

// assignRoot finds the identifier at the base of an assignment target.
func assignRoot(e Expr) (*Ident, error) {
	switch x := e.(type) {
	case *Ident:
		return x, nil
	case *IndexExpr:
		return assignRoot(x.X)
	case *AttrExpr:
		return assignRoot(x.X)
	default:
		return nil, errf(e.P(), "invalid assignment target")
	}
}

// ----- Interpreter -----

// renv is a runtime environment.
type renv struct {
	parent *renv
	vars   map[string]Value
}

func newEnv(parent *renv) *renv { return &renv{parent: parent, vars: map[string]Value{}} }

func (e *renv) lookup(name string) (Value, bool) {
	for env := e; env != nil; env = env.parent {
		if v, ok := env.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

func (e *renv) set(name string, v Value) {
	for env := e; env != nil; env = env.parent {
		if _, ok := env.vars[name]; ok {
			env.vars[name] = v
			return
		}
	}
	e.vars[name] = v
}

// eval evaluates a checked expression. It panics with *RuntimeError on
// execution faults (bad index, division by zero), which — as in the
// product, where an operator exception terminates the PE — propagate out
// of the operator.
func eval(e Expr, env *renv) Value {
	switch x := e.(type) {
	case *IntLit:
		return x.V
	case *FloatLit:
		return x.V
	case *StringLit:
		return x.V
	case *BoolLit:
		return x.V
	case *Ident:
		v, ok := env.lookup(x.Name)
		if !ok {
			panic(rtErrf(x.Pos, "undefined name %q", x.Name))
		}
		return v
	case *AttrExpr:
		tv := eval(x.X, env).(Tup)
		return tv[x.Name]
	case *IndexExpr:
		l := eval(x.X, env).([]Value)
		i := eval(x.I, env).(int64)
		if i < 0 || i >= int64(len(l)) {
			panic(rtErrf(x.Pos, "index %d out of range for list of %d", i, len(l)))
		}
		return l[i]
	case *SliceExpr:
		l := eval(x.X, env).([]Value)
		lo, hi := int64(0), int64(len(l))
		if x.Lo != nil {
			lo = eval(x.Lo, env).(int64)
		}
		if x.Hi != nil {
			hi = eval(x.Hi, env).(int64)
		}
		// Clamp, mirroring SPL's tolerant slicing of short lists.
		lo = min(max(lo, 0), int64(len(l)))
		hi = min(max(hi, lo), int64(len(l)))
		out := make([]Value, hi-lo)
		copy(out, l[lo:hi])
		return out
	case *ListLit:
		out := make([]Value, len(x.Elems))
		for i, el := range x.Elems {
			out[i] = eval(el, env)
		}
		return out
	case *CallExpr:
		b := builtins[x.Name]
		args := make([]Value, len(x.Args))
		for i, a := range x.Args {
			args[i] = eval(a, env)
		}
		return b.eval(x.Pos, args)
	case *UnaryExpr:
		v := eval(x.X, env)
		switch x.Op {
		case NOT:
			return !v.(bool)
		case MINUS:
			switch n := v.(type) {
			case int64:
				return -n
			case float64:
				return -n
			}
		}
		panic(rtErrf(x.Pos, "bad unary operand"))
	case *BinaryExpr:
		return evalBinary(x, env)
	case *CondExpr:
		if eval(x.C, env).(bool) {
			return eval(x.T, env)
		}
		return eval(x.F, env)
	default:
		panic(rtErrf(e.P(), "unsupported expression %T", e))
	}
}

func evalBinary(x *BinaryExpr, env *renv) Value {
	// Short-circuit logic first.
	switch x.Op {
	case ANDAND:
		return eval(x.X, env).(bool) && eval(x.Y, env).(bool)
	case OROR:
		return eval(x.X, env).(bool) || eval(x.Y, env).(bool)
	}
	l, r := eval(x.X, env), eval(x.Y, env)
	switch x.Op {
	case EQ:
		return valueEq(l, r)
	case NEQ:
		return !valueEq(l, r)
	}
	switch lv := l.(type) {
	case int64:
		rv := r.(int64)
		switch x.Op {
		case PLUS:
			return lv + rv
		case MINUS:
			return lv - rv
		case STAR:
			return lv * rv
		case SLASH:
			if rv == 0 {
				panic(rtErrf(x.Pos, "integer division by zero"))
			}
			return lv / rv
		case PERCENT:
			if rv == 0 {
				panic(rtErrf(x.Pos, "integer modulo by zero"))
			}
			return lv % rv
		case LANGLE:
			return lv < rv
		case RANGLE:
			return lv > rv
		case LEQ:
			return lv <= rv
		case GEQ:
			return lv >= rv
		}
	case float64:
		rv := r.(float64)
		switch x.Op {
		case PLUS:
			return lv + rv
		case MINUS:
			return lv - rv
		case STAR:
			return lv * rv
		case SLASH:
			return lv / rv
		case LANGLE:
			return lv < rv
		case RANGLE:
			return lv > rv
		case LEQ:
			return lv <= rv
		case GEQ:
			return lv >= rv
		}
	case string:
		rv := r.(string)
		switch x.Op {
		case PLUS:
			return lv + rv
		case LANGLE:
			return lv < rv
		case RANGLE:
			return lv > rv
		case LEQ:
			return lv <= rv
		case GEQ:
			return lv >= rv
		}
	}
	panic(rtErrf(x.Pos, "bad binary operands %s %v %s", formatValue(l), x.Op, formatValue(r)))
}

// ctrl is a statement's control-flow outcome.
type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
)

// execBlock runs a checked statement block. submit delivers a completed
// tuple to a named output stream. The return value propagates break and
// continue out of nested blocks to the innermost loop.
func execBlock(b *Block, env *renv, submit func(stream string, tv Tup)) ctrl {
	for _, st := range b.Stmts {
		if c := execStmt(st, env, submit); c != ctrlNone {
			return c
		}
	}
	return ctrlNone
}

func execStmt(st Stmt, env *renv, submit func(string, Tup)) ctrl {
	switch s := st.(type) {
	case *DeclStmt:
		if ll, ok := s.Init.(*ListLit); ok && len(ll.Elems) == 0 {
			env.vars[s.Name] = []Value(nil)
			return ctrlNone
		}
		env.vars[s.Name] = eval(s.Init, env)
	case *AssignStmt:
		assignTo(s.Target, eval(s.Value, env), env)
	case *IfStmt:
		if eval(s.Cond, env).(bool) {
			return execBlock(s.Then, newEnv(env), submit)
		} else if s.Else != nil {
			return execBlock(s.Else, newEnv(env), submit)
		}
	case *WhileStmt:
		for eval(s.Cond, env).(bool) {
			if c := execBlock(s.Body, newEnv(env), submit); c == ctrlBreak {
				break
			}
		}
	case *BreakStmt:
		return ctrlBreak
	case *ContinueStmt:
		return ctrlContinue
	case *SubmitStmt:
		tv := Tup{}
		for i, name := range s.Tuple.Names {
			tv[name] = eval(s.Tuple.Values[i], env)
		}
		submit(s.Stream, tv)
	case *ExprStmt:
		eval(s.X, env)
	default:
		panic(rtErrf(st.P(), "unsupported statement %T", st))
	}
	return ctrlNone
}

// assignTo writes v through an assignment target, copying aggregates on
// write so shared values stay immutable.
func assignTo(target Expr, v Value, env *renv) {
	switch t := target.(type) {
	case *Ident:
		env.set(t.Name, v)
	case *IndexExpr:
		base := eval(t.X, env).([]Value)
		i := eval(t.I, env).(int64)
		if i < 0 || i >= int64(len(base)) {
			panic(rtErrf(t.Pos, "index %d out of range for list of %d", i, len(base)))
		}
		cp := make([]Value, len(base))
		copy(cp, base)
		cp[i] = v
		assignTo(t.X, cp, env)
	case *AttrExpr:
		base := eval(t.X, env).(Tup)
		cp := Tup{}
		for k, val := range base {
			cp[k] = val
		}
		cp[t.Name] = v
		assignTo(t.X, cp, env)
	default:
		panic(rtErrf(target.P(), "invalid assignment target %T", target))
	}
}

// constEval evaluates a compile-time-constant expression (operator
// parameters). It returns an error instead of panicking.
func constEval(e Expr) (v Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(*RuntimeError); ok {
				err = fmt.Errorf("%s", re.Error())
				return
			}
			panic(r)
		}
	}()
	empty := newEnv(nil)
	if _, cerr := checkExpr(e, newScope(nil)); cerr != nil {
		return nil, cerr
	}
	return eval(e, empty), nil
}
