package spl

import (
	"testing"

	"streams/internal/tuple"
	"streams/internal/vm"
)

// Allocation guards for the VM emit path. A fresh emit used to build a
// Tup per output tuple — a map allocation plus per-field boxing, the 3
// allocs/op BENCH_vm.json showed on the scalar path. The frame store
// amortizes the payload arena over frameCap rows, so the steady-state
// budget is frameAllocsSlack allocations per row: far below one, and a
// regression back to per-row maps trips these immediately.
//
// The slack covers the frame turnover itself: one frame per frameCap
// rows costs a handful of allocations (the Frame, its lane table, one
// column per field, the rec table), well under 0.1/row.
const frameAllocsSlack = 0.1

// fusedBenchProg compiles benchProgram and fuses its three Customs,
// shared by the scalar and vectorized alloc guards. Reuses benchOps
// via a benchmark shim since the helpers there take *testing.B.
func fusedBenchProg(t *testing.T) *vm.Program {
	t.Helper()
	compiled, err := Compile(benchProgram, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var progs []*vm.Program
	for _, n := range compiled.Graph.Nodes {
		if pr, ok := n.Op.(vm.Programmed); ok && pr.VMProgram() != nil {
			progs = append(progs, pr.VMProgram())
		}
	}
	if len(progs) != 3 {
		t.Fatalf("benchProgram compiled %d bytecode stages, want 3", len(progs))
	}
	fused, err := vm.Fuse(progs)
	if err != nil {
		t.Fatal(err)
	}
	return fused
}

// TestScalarVMEmitZeroAlloc guards the scalar Machine's fused dispatch
// loop: steady-state runs over the chain3 pipeline must not allocate
// per tuple — neither for the two interior fresh emits (dead stores,
// elided by Verify's needStore) nor for the final one (frame store).
func TestScalarVMEmitZeroAlloc(t *testing.T) {
	fused := fusedBenchProg(t)
	var m vm.Machine
	m.Reset(fused)
	sink := vm.EmitFunc(func(tuple.Tuple) {})
	in := tuple.Tuple{Ref: Tup{"x": int64(7), "y": int64(9)}}
	m.Run(fused, in, sink) // warm the machine's buffers and store
	avg := testing.AllocsPerRun(2000, func() {
		m.Run(fused, in, sink)
	})
	if avg > frameAllocsSlack {
		t.Fatalf("scalar fused run allocates %.3f/op, budget %.2f", avg, frameAllocsSlack)
	}
}

// TestVecVMEmitZeroAlloc guards the vectorized path end to end:
// Reset, lane decode, segment execution, filter prune and the emit
// loop together must stay within the frame-turnover budget per row.
func TestVecVMEmitZeroAlloc(t *testing.T) {
	fused := fusedBenchProg(t)
	vp, err := vm.PlanVec(fused)
	if err != nil {
		t.Fatalf("planvec: %v", err)
	}
	const rows = 64
	batch := make([]tuple.Tuple, rows)
	for i := range batch {
		batch[i] = tuple.Tuple{Seq: uint64(i), Ref: Tup{"x": int64(i), "y": int64(i * 3)}}
	}
	var bm vm.BatchMachine
	sink := vm.EmitFunc(func(tuple.Tuple) {})
	runOnce := func() {
		bm.Reset(vp)
		bm.Run(batch)
		bm.EmitRows(sink)
	}
	runOnce() // warm lanes and the frame store
	avg := testing.AllocsPerRun(500, runOnce)
	if perRow := avg / rows; perRow > frameAllocsSlack {
		t.Fatalf("vectorized batch allocates %.3f/row (%.1f/batch), budget %.2f/row", perRow, avg, frameAllocsSlack)
	}
}

// TestVecVMFilterTailZeroAlloc guards the fresh-interior/forwarding-
// tail emit path (map|filter): materializing the interior segment's
// template per surviving row must go through the frame store and stay
// within the same amortized budget as the fresh-final path.
func TestVecVMFilterTailZeroAlloc(t *testing.T) {
	fused := fusedDiffProgs(t, vecDiffFilterTailProgram, "S1", "S2")
	vp, err := vm.PlanVec(fused)
	if err != nil {
		t.Fatalf("planvec: %v", err)
	}
	const rows = 64
	batch := make([]tuple.Tuple, rows)
	for i := range batch {
		batch[i] = tuple.Tuple{Seq: uint64(i), Ref: Tup{"x": int64(i), "y": int64(i * 3)}}
	}
	var bm vm.BatchMachine
	sink := vm.EmitFunc(func(tuple.Tuple) {})
	runOnce := func() {
		bm.Reset(vp)
		bm.Run(batch)
		bm.EmitRows(sink)
	}
	runOnce() // warm lanes and the frame store
	avg := testing.AllocsPerRun(500, runOnce)
	if perRow := avg / rows; perRow > frameAllocsSlack {
		t.Fatalf("filter-tail batch allocates %.3f/row (%.1f/batch), budget %.2f/row", perRow, avg, frameAllocsSlack)
	}
}
