package spl

import (
	"strconv"
	"strings"

	"streams/internal/ops"
)

// builtin describes one builtin function: a type-checking rule and an
// evaluator. Checking is ad-hoc per function (several builtins are
// generic over element types, which a signature table cannot express
// simply).
type builtin struct {
	check func(pos Pos, args []Type) (Type, error)
	eval  func(pos Pos, args []Value) Value
}

func fixedSig(result Type, params ...Type) func(Pos, []Type) (Type, error) {
	return func(pos Pos, args []Type) (Type, error) {
		if len(args) != len(params) {
			return nil, errf(pos, "wrong argument count: got %d, want %d", len(args), len(params))
		}
		for i, p := range params {
			if !assignable(p, args[i]) {
				return nil, errf(pos, "argument %d has type %s, want %s", i+1, args[i], p)
			}
		}
		return result, nil
	}
}

var builtins = map[string]builtin{
	// tokenize(str, delimiters, keepEmpty) splits str at any character in
	// delimiters; keepEmpty retains empty tokens between adjacent
	// delimiters.
	"tokenize": {
		check: fixedSig(ListType{Elem: RString}, RString, RString, Boolean),
		eval: func(_ Pos, args []Value) Value {
			s, delims, keep := args[0].(string), args[1].(string), args[2].(bool)
			isDelim := func(r rune) bool { return strings.ContainsRune(delims, r) }
			var toks []string
			if keep {
				toks = strings.FieldsFunc(s, isDelim)
				// FieldsFunc drops empties; reimplement keeping them.
				toks = toks[:0]
				cur := strings.Builder{}
				for _, r := range s {
					if isDelim(r) {
						toks = append(toks, cur.String())
						cur.Reset()
					} else {
						cur.WriteRune(r)
					}
				}
				toks = append(toks, cur.String())
			} else {
				toks = strings.FieldsFunc(s, isDelim)
			}
			out := make([]Value, len(toks))
			for i, t := range toks {
				out[i] = t
			}
			return out
		},
	},
	// findFirst(str, needle, from) returns the byte index of needle at or
	// after from, or -1.
	"findFirst": {
		check: fixedSig(Int64, RString, RString, Int64),
		eval: func(_ Pos, args []Value) Value {
			s, needle, from := args[0].(string), args[1].(string), args[2].(int64)
			if from < 0 || from > int64(len(s)) {
				return int64(-1)
			}
			i := strings.Index(s[from:], needle)
			if i < 0 {
				return int64(-1)
			}
			return from + int64(i)
		},
	},
	// size(list<T>) returns the element count.
	"size": {
		check: func(pos Pos, args []Type) (Type, error) {
			if len(args) != 1 {
				return nil, errf(pos, "size takes one argument")
			}
			if _, ok := args[0].(ListType); !ok {
				return nil, errf(pos, "size argument has type %s, want a list", args[0])
			}
			return Int64, nil
		},
		eval: func(_ Pos, args []Value) Value {
			return int64(len(args[0].([]Value)))
		},
	},
	// length(rstring) returns the byte length.
	"length": {
		check: fixedSig(Int64, RString),
		eval: func(_ Pos, args []Value) Value {
			return int64(len(args[0].(string)))
		},
	},
	// flatten(list<rstring>) joins tokens with single spaces (the paper's
	// Figure 1 uses it to reassemble a log message tail).
	"flatten": {
		check: fixedSig(RString, ListType{Elem: RString}),
		eval: func(_ Pos, args []Value) Value {
			l := args[0].([]Value)
			parts := make([]string, len(l))
			for i, v := range l {
				parts[i] = v.(string)
			}
			return strings.Join(parts, " ")
		},
	},
	// substring(str, from, length).
	"substring": {
		check: fixedSig(RString, RString, Int64, Int64),
		eval: func(pos Pos, args []Value) Value {
			s, from, n := args[0].(string), args[1].(int64), args[2].(int64)
			if from < 0 || n < 0 || from > int64(len(s)) {
				panic(rtErrf(pos, "substring(%q, %d, %d) out of range", s, from, n))
			}
			end := from + n
			if end > int64(len(s)) {
				end = int64(len(s))
			}
			return s[from:end]
		},
	},
	"lower": {
		check: fixedSig(RString, RString),
		eval:  func(_ Pos, args []Value) Value { return strings.ToLower(args[0].(string)) },
	},
	"upper": {
		check: fixedSig(RString, RString),
		eval:  func(_ Pos, args []Value) Value { return strings.ToUpper(args[0].(string)) },
	},
	// toInt(rstring) parses a decimal integer (0 on failure, as SPL's
	// lenient casts behave).
	"toInt": {
		check: fixedSig(Int64, RString),
		eval: func(_ Pos, args []Value) Value {
			v, _ := strconv.ParseInt(strings.TrimSpace(args[0].(string)), 10, 64)
			return v
		},
	},
	// toFloat64(x) widens an integer to float64.
	"toFloat64": {
		check: func(pos Pos, args []Type) (Type, error) {
			if len(args) != 1 || (!isInt(args[0]) && !args[0].equal(Float64)) {
				return nil, errf(pos, "toFloat64 takes one numeric argument")
			}
			return Float64, nil
		},
		eval: func(_ Pos, args []Value) Value {
			switch v := args[0].(type) {
			case int64:
				return float64(v)
			default:
				return v
			}
		},
	},
	// toString(x) formats any value.
	"toString": {
		check: func(pos Pos, args []Type) (Type, error) {
			if len(args) != 1 {
				return nil, errf(pos, "toString takes one argument")
			}
			return RString, nil
		},
		eval: func(_ Pos, args []Value) Value { return formatValue(args[0]) },
	},
	// makeDate / makeTime normalize date and time fragments; the paper's
	// example feeds them syslog fields.
	"makeDate": {
		check: fixedSig(RString, RString),
		eval:  func(_ Pos, args []Value) Value { return args[0].(string) },
	},
	"makeTime": {
		check: fixedSig(RString, RString),
		eval:  func(_ Pos, args []Value) Value { return args[0].(string) },
	},
	// makeTimestamp(date, time) combines the fragments.
	"makeTimestamp": {
		check: fixedSig(Timestamp, RString, RString),
		eval: func(_ Pos, args []Value) Value {
			return args[0].(string) + " " + args[1].(string)
		},
	},
	// parseMsg(msg) extracts the uid, euid, tty, rhost and (when present)
	// user values from an sshd authentication-failure message, in that
	// order — the helper the paper's Figure 1 calls. A missing or empty
	// trailing key shortens the list, matching the example's
	// size(tokens) == 5 check for the optional user.
	"parseMsg": {
		check: fixedSig(ListType{Elem: RString}, RString),
		eval: func(_ Pos, args []Value) Value {
			kv := map[string]string{}
			for _, tok := range strings.Fields(args[0].(string)) {
				if i := strings.IndexByte(tok, '='); i > 0 {
					kv[tok[:i]] = tok[i+1:]
				}
			}
			var out []Value
			for _, key := range []string{"uid", "euid", "tty", "rhost", "user"} {
				v, ok := kv[key]
				if !ok || (v == "" && key == "user") {
					break
				}
				out = append(out, v)
			}
			return out
		},
	},
	// spin(cost) performs cost floating-point operations and returns the
	// result — the synthetic work of the paper's evaluation, exposed to
	// SPL programs.
	"spin": {
		check: fixedSig(Float64, Int64),
		eval: func(_ Pos, args []Value) Value {
			return ops.Spin(int(args[0].(int64))/2, 1)
		},
	},
}
