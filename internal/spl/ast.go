package spl

// The abstract syntax tree produced by the parser. Nodes carry the
// position of their first token for diagnostics.

// Program is a parsed SPL source file: a set of composite operators.
type Program struct {
	Composites []*Composite
}

// Composite is one composite operator definition.
type Composite struct {
	Pos         Pos
	Name        string
	Annotations []*Annotation
	// Outputs and Inputs are the composite's stream parameters, in
	// declaration order.
	Outputs []string
	Inputs  []string
	// Types are the type-section definitions.
	Types []*TypeDef
	// Invocations are the graph-section operator invocations.
	Invocations []*Invocation
}

// Annotation is @name(key=value, ...).
type Annotation struct {
	Pos  Pos
	Name string
	Args map[string]string
}

// TypeDef names a tuple type: Name = field list.
type TypeDef struct {
	Pos    Pos
	Name   string
	Fields []Field
}

// Field is one attribute declaration.
type Field struct {
	Type TypeExpr
	Name string
}

// TypeExpr is a syntactic type: a primitive or named type, list<T>, or
// an inline tuple (field list).
type TypeExpr struct {
	Pos Pos
	// Name holds the primitive or named type, or "list".
	Name string
	// Elem is the list element type when Name == "list".
	Elem *TypeExpr
	// Fields holds an inline tuple type (Name == "").
	Fields []Field
}

// Invocation is one operator invocation in a graph section: either a
// stream declaration (stream<T> Name = Op(Ins) {...}) or a sink
// declaration (() as Alias = Op(Ins) {...}).
type Invocation struct {
	Pos         Pos
	Annotations []*Annotation
	// OutStream is the declared output stream name; empty for sinks.
	OutStream string
	// OutType is the declared output stream type; nil for sinks.
	OutType *TypeExpr
	// Alias is the sink's "as" name; empty for stream declarations.
	Alias string
	// OpName is the invoked operator or composite name.
	OpName string
	// Inputs are the input stream names per input port: semicolons in
	// the invocation separate ports, commas fan several streams into one
	// port. Inputs[p] lists the streams subscribed to port p.
	Inputs [][]string
	// Params are the param-clause assignments.
	Params []*ParamAssign
	// Logic maps an input stream name to its onTuple block.
	Logic map[string]*Block
	// State is the operator's persistent state declarations (logic
	// state: { ... }), nil when absent.
	State *Block
}

// Name returns the invocation's diagnostic name.
func (inv *Invocation) Name() string {
	if inv.OutStream != "" {
		return inv.OutStream
	}
	return inv.Alias
}

// ParamAssign is one "name: expr;" inside a param clause.
type ParamAssign struct {
	Pos  Pos
	Name string
	Expr Expr
}

// Block is a brace-delimited statement list.
type Block struct {
	Pos   Pos
	Stmts []Stmt
}

// Stmt is a statement node.
type Stmt interface {
	P() Pos
	stmt()
}

// DeclStmt declares a local variable: [mutable] type name = expr;
type DeclStmt struct {
	Pos     Pos
	Mutable bool
	Type    TypeExpr
	Name    string
	Init    Expr
}

// AssignStmt assigns to a declared local: target = expr;
type AssignStmt struct {
	Pos    Pos
	Target Expr
	Value  Expr
}

// IfStmt is if (cond) block [else block].
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *Block
	Else *Block
}

// SubmitStmt is submit({attrs}, Stream);
type SubmitStmt struct {
	Pos    Pos
	Tuple  *TupleLit
	Stream string
}

// ExprStmt evaluates an expression for its side effects (builtin calls).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// WhileStmt is while (cond) block.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *Block
}

// BreakStmt exits the innermost while loop.
type BreakStmt struct {
	Pos Pos
}

// ContinueStmt restarts the innermost while loop.
type ContinueStmt struct {
	Pos Pos
}

// P implementations.
func (s *DeclStmt) P() Pos     { return s.Pos }
func (s *AssignStmt) P() Pos   { return s.Pos }
func (s *IfStmt) P() Pos       { return s.Pos }
func (s *SubmitStmt) P() Pos   { return s.Pos }
func (s *ExprStmt) P() Pos     { return s.Pos }
func (s *WhileStmt) P() Pos    { return s.Pos }
func (s *BreakStmt) P() Pos    { return s.Pos }
func (s *ContinueStmt) P() Pos { return s.Pos }

func (*DeclStmt) stmt()     {}
func (*AssignStmt) stmt()   {}
func (*IfStmt) stmt()       {}
func (*SubmitStmt) stmt()   {}
func (*ExprStmt) stmt()     {}
func (*WhileStmt) stmt()    {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}

// Expr is an expression node.
type Expr interface {
	P() Pos
	expr()
}

// Ident is a name reference.
type Ident struct {
	Pos  Pos
	Name string
}

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	V   int64
}

// FloatLit is a float literal.
type FloatLit struct {
	Pos Pos
	V   float64
}

// StringLit is a string literal.
type StringLit struct {
	Pos Pos
	V   string
}

// BoolLit is true or false.
type BoolLit struct {
	Pos Pos
	V   bool
}

// ListLit is [e0, e1, ...].
type ListLit struct {
	Pos   Pos
	Elems []Expr
}

// TupleLit is {name = expr, ...}.
type TupleLit struct {
	Pos    Pos
	Names  []string
	Values []Expr
}

// AttrExpr is x.name (tuple attribute access).
type AttrExpr struct {
	Pos  Pos
	X    Expr
	Name string
}

// IndexExpr is x[i].
type IndexExpr struct {
	Pos  Pos
	X, I Expr
}

// SliceExpr is x[lo:hi]; either bound may be nil.
type SliceExpr struct {
	Pos    Pos
	X      Expr
	Lo, Hi Expr
}

// CallExpr is name(args...).
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr
}

// UnaryExpr is !x or -x.
type UnaryExpr struct {
	Pos Pos
	Op  Kind
	X   Expr
}

// BinaryExpr is x op y.
type BinaryExpr struct {
	Pos  Pos
	Op   Kind
	X, Y Expr
}

// CondExpr is c ? t : f.
type CondExpr struct {
	Pos     Pos
	C, T, F Expr
}

// P implementations.
func (e *Ident) P() Pos      { return e.Pos }
func (e *IntLit) P() Pos     { return e.Pos }
func (e *FloatLit) P() Pos   { return e.Pos }
func (e *StringLit) P() Pos  { return e.Pos }
func (e *BoolLit) P() Pos    { return e.Pos }
func (e *ListLit) P() Pos    { return e.Pos }
func (e *TupleLit) P() Pos   { return e.Pos }
func (e *AttrExpr) P() Pos   { return e.Pos }
func (e *IndexExpr) P() Pos  { return e.Pos }
func (e *SliceExpr) P() Pos  { return e.Pos }
func (e *CallExpr) P() Pos   { return e.Pos }
func (e *UnaryExpr) P() Pos  { return e.Pos }
func (e *BinaryExpr) P() Pos { return e.Pos }
func (e *CondExpr) P() Pos   { return e.Pos }

func (*Ident) expr()      {}
func (*IntLit) expr()     {}
func (*FloatLit) expr()   {}
func (*StringLit) expr()  {}
func (*BoolLit) expr()    {}
func (*ListLit) expr()    {}
func (*TupleLit) expr()   {}
func (*AttrExpr) expr()   {}
func (*IndexExpr) expr()  {}
func (*SliceExpr) expr()  {}
func (*CallExpr) expr()   {}
func (*UnaryExpr) expr()  {}
func (*BinaryExpr) expr() {}
func (*CondExpr) expr()   {}
