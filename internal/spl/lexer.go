package spl

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Lexer turns SPL source into tokens. It supports //-line and /* */
// block comments, decimal integer and float literals, double-quoted
// strings with the usual escapes, and the punctuation the parser needs.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	err  *Error
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input, returning the tokens (ending with EOF)
// or the first lexical error.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t := lx.Next()
		if lx.err != nil {
			return nil, lx.err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) peek() rune {
	if lx.off >= len(lx.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(lx.src[lx.off:])
	return r
}

func (lx *Lexer) peek2() rune {
	if lx.off >= len(lx.src) {
		return 0
	}
	_, w := utf8.DecodeRuneInString(lx.src[lx.off:])
	if lx.off+w >= len(lx.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(lx.src[lx.off+w:])
	return r
}

func (lx *Lexer) advance() rune {
	r, w := utf8.DecodeRuneInString(lx.src[lx.off:])
	lx.off += w
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		r := lx.peek()
		switch {
		case unicode.IsSpace(r):
			lx.advance()
		case r == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case r == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				lx.err = errf(start, "unterminated block comment")
				return
			}
		default:
			return
		}
	}
}

// Next returns the next token.
func (lx *Lexer) Next() Token {
	lx.skipSpaceAndComments()
	if lx.err != nil {
		return Token{Kind: EOF, Pos: lx.pos()}
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: pos}
	}
	r := lx.peek()
	switch {
	case unicode.IsLetter(r) || r == '_':
		return lx.ident(pos)
	case unicode.IsDigit(r):
		return lx.number(pos)
	case r == '"':
		return lx.str(pos)
	}
	lx.advance()
	two := func(next rune, yes, no Kind) Token {
		if lx.peek() == next {
			lx.advance()
			return Token{Kind: yes, Pos: pos}
		}
		return Token{Kind: no, Pos: pos}
	}
	switch r {
	case '{':
		return Token{Kind: LBRACE, Pos: pos}
	case '}':
		return Token{Kind: RBRACE, Pos: pos}
	case '(':
		return Token{Kind: LPAREN, Pos: pos}
	case ')':
		return Token{Kind: RPAREN, Pos: pos}
	case '[':
		return Token{Kind: LBRACKET, Pos: pos}
	case ']':
		return Token{Kind: RBRACKET, Pos: pos}
	case ',':
		return Token{Kind: COMMA, Pos: pos}
	case ';':
		return Token{Kind: SEMI, Pos: pos}
	case ':':
		return Token{Kind: COLON, Pos: pos}
	case '.':
		return Token{Kind: DOT, Pos: pos}
	case '@':
		return Token{Kind: AT, Pos: pos}
	case '?':
		return Token{Kind: QUESTION, Pos: pos}
	case '+':
		return Token{Kind: PLUS, Pos: pos}
	case '-':
		return Token{Kind: MINUS, Pos: pos}
	case '*':
		return Token{Kind: STAR, Pos: pos}
	case '/':
		return Token{Kind: SLASH, Pos: pos}
	case '%':
		return Token{Kind: PERCENT, Pos: pos}
	case '=':
		return two('=', EQ, ASSIGN)
	case '!':
		return two('=', NEQ, NOT)
	case '<':
		return two('=', LEQ, LANGLE)
	case '>':
		return two('=', GEQ, RANGLE)
	case '&':
		if lx.peek() == '&' {
			lx.advance()
			return Token{Kind: ANDAND, Pos: pos}
		}
	case '|':
		if lx.peek() == '|' {
			lx.advance()
			return Token{Kind: OROR, Pos: pos}
		}
	}
	lx.err = errf(pos, "unexpected character %q", r)
	return Token{Kind: EOF, Pos: pos}
}

func (lx *Lexer) ident(pos Pos) Token {
	start := lx.off
	for lx.off < len(lx.src) {
		r := lx.peek()
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
			break
		}
		lx.advance()
	}
	text := lx.src[start:lx.off]
	if k, ok := keywords[text]; ok {
		return Token{Kind: k, Text: text, Pos: pos}
	}
	return Token{Kind: IDENT, Text: text, Pos: pos}
}

func (lx *Lexer) number(pos Pos) Token {
	start := lx.off
	kind := INT
	for lx.off < len(lx.src) && unicode.IsDigit(lx.peek()) {
		lx.advance()
	}
	if lx.peek() == '.' && unicode.IsDigit(lx.peek2()) {
		kind = FLOAT
		lx.advance()
		for lx.off < len(lx.src) && unicode.IsDigit(lx.peek()) {
			lx.advance()
		}
	}
	return Token{Kind: kind, Text: lx.src[start:lx.off], Pos: pos}
}

func (lx *Lexer) str(pos Pos) Token {
	lx.advance() // opening quote
	var sb strings.Builder
	for {
		if lx.off >= len(lx.src) {
			lx.err = errf(pos, "unterminated string literal")
			return Token{Kind: EOF, Pos: pos}
		}
		r := lx.advance()
		switch r {
		case '"':
			return Token{Kind: STRING, Text: sb.String(), Pos: pos}
		case '\\':
			if lx.off >= len(lx.src) {
				lx.err = errf(pos, "unterminated string escape")
				return Token{Kind: EOF, Pos: pos}
			}
			e := lx.advance()
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '\\', '"':
				sb.WriteRune(e)
			default:
				lx.err = errf(pos, "unknown escape \\%c", e)
				return Token{Kind: EOF, Pos: pos}
			}
		case '\n':
			lx.err = errf(pos, "newline in string literal")
			return Token{Kind: EOF, Pos: pos}
		default:
			sb.WriteRune(r)
		}
	}
}
