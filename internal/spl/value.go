package spl

import (
	"fmt"
	"sort"
	"strings"
)

// Runtime value representation:
//
//	boolean          → bool
//	int32, int64     → int64
//	float64          → float64
//	rstring          → string
//	timestamp        → string (normalized "date time")
//	list<T>          → []Value
//	tuple types      → Tup
//
// Values are immutable by convention: the interpreter copies lists and
// tuples on modification, so tuples can be shared across operator queues
// without synchronization (matching the runtime's copy-on-submit tuple
// model).
type Value any

// Tup is a runtime tuple: attribute name → value. Field order for
// printing comes from the static TupleType, so a plain map suffices.
type Tup map[string]Value

// zeroValue returns the zero of a resolved type.
func zeroValue(t Type) Value {
	switch tt := t.(type) {
	case Prim:
		switch tt {
		case Boolean:
			return false
		case Int32, Int64:
			return int64(0)
		case Float64:
			return float64(0)
		case RString, Timestamp:
			return ""
		}
	case ListType:
		return []Value(nil)
	case TupleType:
		tv := Tup{}
		for _, f := range tt.Fields {
			tv[f.Name] = zeroValue(f.Type)
		}
		return tv
	}
	return nil
}

// formatValue renders a value for FileSink output and diagnostics.
func formatValue(v Value) string {
	switch x := v.(type) {
	case bool:
		if x {
			return "true"
		}
		return "false"
	case int64:
		return fmt.Sprintf("%d", x)
	case float64:
		return fmt.Sprintf("%g", x)
	case string:
		return x
	case []Value:
		parts := make([]string, len(x))
		for i, e := range x {
			parts[i] = formatValue(e)
		}
		return "[" + strings.Join(parts, ",") + "]"
	case Tup:
		names := make([]string, 0, len(x))
		for n := range x {
			names = append(names, n)
		}
		sort.Strings(names)
		parts := make([]string, len(names))
		for i, n := range names {
			parts[i] = n + "=" + formatValue(x[n])
		}
		return "{" + strings.Join(parts, ",") + "}"
	case nil:
		return "<nil>"
	default:
		return fmt.Sprintf("%v", x)
	}
}

// formatTuple renders a tuple's attributes in static field order,
// comma-separated — the FileSink line format.
func formatTuple(tv Tup, tt TupleType) string {
	parts := make([]string, len(tt.Fields))
	for i, f := range tt.Fields {
		parts[i] = formatValue(tv[f.Name])
	}
	return strings.Join(parts, ",")
}

// valueEq compares two same-typed runtime values.
func valueEq(a, b Value) bool {
	switch x := a.(type) {
	case []Value:
		y, ok := b.([]Value)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !valueEq(x[i], y[i]) {
				return false
			}
		}
		return true
	case Tup:
		y, ok := b.(Tup)
		if !ok || len(x) != len(y) {
			return false
		}
		for k, v := range x {
			if !valueEq(v, y[k]) {
				return false
			}
		}
		return true
	default:
		return a == b
	}
}

// RuntimeError is an SPL execution error (bad index, division by zero).
// Operator logic panics with a RuntimeError; as in the product, a failing
// operator takes its PE down.
type RuntimeError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *RuntimeError) Error() string { return fmt.Sprintf("spl runtime: %s: %s", e.Pos, e.Msg) }

func rtErrf(pos Pos, format string, args ...any) *RuntimeError {
	return &RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
