package spl

import (
	"fmt"
	"strings"
	"testing"

	"streams/internal/graph"
	"streams/internal/tuple"
	"streams/internal/vm"
)

// BenchmarkVMDispatch compares the three dispatch forms on the same
// operator logic (make bench-vm archives it as BENCH_vm.json):
//
//	single/closure — one Custom operator, tree-walking evaluator
//	single/vm      — the same operator through its bytecode program
//	chain3/closure — three Customs linked Process-to-Process, the work
//	                 an inline chain link does per operator
//	chain3/fused   — the three programs fused into one superinstruction
//	                 program: one dispatch loop, attribute values moving
//	                 through VM slots instead of fresh Tup maps
const benchProgram = `
composite Main {
  graph
    stream<int64 x, int64 y> N = Beacon() { param iterations: 1; }
    stream<int64 a, int64 b> S1 = Custom(N) {
      logic onTuple N: { submit({ a = x * 3 + y, b = x - 1 }, S1); }
    }
    stream<int64 c> S2 = Custom(S1) {
      logic onTuple S1: { submit({ c = a * a + b * 2 }, S2); }
    }
    stream<int64 r> S3 = Custom(S2) {
      logic onTuple S2: { submit({ r = c % 1000 + 7 }, S3); }
    }
    () as Out = FileSink(S3) { param file: "/dev/null"; }
}
`

// benchOps compiles benchProgram and returns the three Custom operators
// in pipeline order.
func benchOps(b *testing.B, opts Options) [3]graph.Operator {
	b.Helper()
	compiled, err := Compile(benchProgram, opts)
	if err != nil {
		b.Fatal(err)
	}
	var out [3]graph.Operator
	for _, n := range compiled.Graph.Nodes {
		switch {
		case strings.HasSuffix(n.Op.Name(), "/S1"):
			out[0] = n.Op
		case strings.HasSuffix(n.Op.Name(), "/S2"):
			out[1] = n.Op
		case strings.HasSuffix(n.Op.Name(), "/S3"):
			out[2] = n.Op
		}
	}
	for i, op := range out {
		if op == nil {
			b.Fatalf("operator S%d not found in compiled graph", i+1)
		}
	}
	return out
}

// nullSub drops submissions: the benchmarks measure operator dispatch,
// not downstream routing.
type nullSub struct{ n int }

func (s *nullSub) Submit(tuple.Tuple, int) { s.n++ }

// chainSub links one operator's output to the next operator's Process,
// modelling the per-operator work of an inline chain link.
type chainSub struct {
	next graph.Operator
	out  graph.Submitter
}

func (s *chainSub) Submit(t tuple.Tuple, _ int) { s.next.Process(s.out, t, 0) }

func benchTuple() tuple.Tuple {
	return tuple.Tuple{Ref: Tup{"x": int64(7), "y": int64(9)}}
}

func BenchmarkVMDispatch(b *testing.B) {
	b.Run("single/closure", func(b *testing.B) {
		op := benchOps(b, Options{NoVM: true})[0]
		sink := &nullSub{}
		t := benchTuple()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op.Process(sink, t, 0)
		}
	})
	b.Run("single/vm", func(b *testing.B) {
		op := benchOps(b, Options{})[0]
		if op.(vm.Programmed).VMProgram() == nil {
			b.Fatal("S1 did not compile to bytecode")
		}
		sink := &nullSub{}
		t := benchTuple()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op.Process(sink, t, 0)
		}
	})
	b.Run("chain3/closure", func(b *testing.B) {
		ops := benchOps(b, Options{NoVM: true})
		sink := &nullSub{}
		link := &chainSub{next: ops[0], out: &chainSub{next: ops[1], out: &chainSub{next: ops[2], out: sink}}}
		t := benchTuple()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			link.Submit(t, 0)
		}
	})
	b.Run("chain3/fused-batch", func(b *testing.B) {
		fused := benchFused(b)
		var m vm.Machine
		var emitted int
		emit := vm.EmitFunc(func(tuple.Tuple) { emitted++ })
		t := benchTuple()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Run(fused, t, emit)
		}
	})
}

// benchFused compiles benchProgram and fuses its three stages.
func benchFused(b *testing.B) *vm.Program {
	b.Helper()
	ops := benchOps(b, Options{})
	progs := make([]*vm.Program, 3)
	for i, op := range ops {
		progs[i] = op.(vm.Programmed).VMProgram()
		if progs[i] == nil {
			b.Fatalf("S%d did not compile to bytecode", i+1)
		}
	}
	fused, err := vm.Fuse(progs)
	if err != nil {
		b.Fatal(err)
	}
	return fused
}

// BenchmarkVMVectorized compares scalar tuple-at-a-time dispatch with
// vectorized batch-at-a-time execution of the same chain3 fused
// program, sweeping batch size. ns/op is per BATCH (one iteration
// processes all rows), so scalar and vec at the same rows= are
// directly comparable; divide by rows for per-tuple cost. make
// bench-vm archives both this and BenchmarkVMDispatch in
// BENCH_vm.json, and CI's vm smoke compares fresh numbers against the
// committed file via benchjson -compare.
func BenchmarkVMVectorized(b *testing.B) {
	fused := benchFused(b)
	vp, err := vm.PlanVec(fused)
	if err != nil {
		b.Fatalf("planvec: %v", err)
	}
	for _, rows := range []int{16, 64, 256} {
		batch := make([]tuple.Tuple, rows)
		for i := range batch {
			batch[i] = tuple.Tuple{Seq: uint64(i + 1), Ref: Tup{"x": int64(i%37 - 5), "y": int64(i % 11)}}
		}
		b.Run(fmt.Sprintf("chain3/scalar/rows=%d", rows), func(b *testing.B) {
			var m vm.Machine
			m.Reset(fused)
			var emitted int
			sink := vm.EmitFunc(func(tuple.Tuple) { emitted++ })
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range batch {
					m.Run(fused, batch[j], sink)
				}
			}
		})
		b.Run(fmt.Sprintf("chain3/vec/rows=%d", rows), func(b *testing.B) {
			var bm vm.BatchMachine
			var emitted int
			sink := vm.EmitFunc(func(tuple.Tuple) { emitted++ })
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bm.Reset(vp)
				bm.Run(batch)
				bm.EmitRows(sink)
			}
		})
	}
}
