package spl

import (
	"strings"
	"testing"

	"streams/internal/graph"
	"streams/internal/tuple"
	"streams/internal/vm"
)

// BenchmarkVMDispatch compares the three dispatch forms on the same
// operator logic (make bench-vm archives it as BENCH_vm.json):
//
//	single/closure — one Custom operator, tree-walking evaluator
//	single/vm      — the same operator through its bytecode program
//	chain3/closure — three Customs linked Process-to-Process, the work
//	                 an inline chain link does per operator
//	chain3/fused   — the three programs fused into one superinstruction
//	                 program: one dispatch loop, attribute values moving
//	                 through VM slots instead of fresh Tup maps
const benchProgram = `
composite Main {
  graph
    stream<int64 x, int64 y> N = Beacon() { param iterations: 1; }
    stream<int64 a, int64 b> S1 = Custom(N) {
      logic onTuple N: { submit({ a = x * 3 + y, b = x - 1 }, S1); }
    }
    stream<int64 c> S2 = Custom(S1) {
      logic onTuple S1: { submit({ c = a * a + b * 2 }, S2); }
    }
    stream<int64 r> S3 = Custom(S2) {
      logic onTuple S2: { submit({ r = c % 1000 + 7 }, S3); }
    }
    () as Out = FileSink(S3) { param file: "/dev/null"; }
}
`

// benchOps compiles benchProgram and returns the three Custom operators
// in pipeline order.
func benchOps(b *testing.B, opts Options) [3]graph.Operator {
	b.Helper()
	compiled, err := Compile(benchProgram, opts)
	if err != nil {
		b.Fatal(err)
	}
	var out [3]graph.Operator
	for _, n := range compiled.Graph.Nodes {
		switch {
		case strings.HasSuffix(n.Op.Name(), "/S1"):
			out[0] = n.Op
		case strings.HasSuffix(n.Op.Name(), "/S2"):
			out[1] = n.Op
		case strings.HasSuffix(n.Op.Name(), "/S3"):
			out[2] = n.Op
		}
	}
	for i, op := range out {
		if op == nil {
			b.Fatalf("operator S%d not found in compiled graph", i+1)
		}
	}
	return out
}

// nullSub drops submissions: the benchmarks measure operator dispatch,
// not downstream routing.
type nullSub struct{ n int }

func (s *nullSub) Submit(tuple.Tuple, int) { s.n++ }

// chainSub links one operator's output to the next operator's Process,
// modelling the per-operator work of an inline chain link.
type chainSub struct {
	next graph.Operator
	out  graph.Submitter
}

func (s *chainSub) Submit(t tuple.Tuple, _ int) { s.next.Process(s.out, t, 0) }

func benchTuple() tuple.Tuple {
	return tuple.Tuple{Ref: Tup{"x": int64(7), "y": int64(9)}}
}

func BenchmarkVMDispatch(b *testing.B) {
	b.Run("single/closure", func(b *testing.B) {
		op := benchOps(b, Options{NoVM: true})[0]
		sink := &nullSub{}
		t := benchTuple()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op.Process(sink, t, 0)
		}
	})
	b.Run("single/vm", func(b *testing.B) {
		op := benchOps(b, Options{})[0]
		if op.(vm.Programmed).VMProgram() == nil {
			b.Fatal("S1 did not compile to bytecode")
		}
		sink := &nullSub{}
		t := benchTuple()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op.Process(sink, t, 0)
		}
	})
	b.Run("chain3/closure", func(b *testing.B) {
		ops := benchOps(b, Options{NoVM: true})
		sink := &nullSub{}
		link := &chainSub{next: ops[0], out: &chainSub{next: ops[1], out: &chainSub{next: ops[2], out: sink}}}
		t := benchTuple()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			link.Submit(t, 0)
		}
	})
	b.Run("chain3/fused", func(b *testing.B) {
		ops := benchOps(b, Options{})
		progs := make([]*vm.Program, 3)
		for i, op := range ops {
			progs[i] = op.(vm.Programmed).VMProgram()
			if progs[i] == nil {
				b.Fatalf("S%d did not compile to bytecode", i+1)
			}
		}
		fused, err := vm.Fuse(progs)
		if err != nil {
			b.Fatal(err)
		}
		var m vm.Machine
		var emitted int
		emit := vm.EmitFunc(func(tuple.Tuple) { emitted++ })
		t := benchTuple()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Run(fused, t, emit)
		}
	})
}
