package spl

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`composite Main { graph stream<rstring line> X = F() {} }`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KWComposite, IDENT, LBRACE, KWGraph, KWStream, LANGLE,
		IDENT, IDENT, RANGLE, IDENT, ASSIGN, IDENT, LPAREN, RPAREN,
		LBRACE, RBRACE, RBRACE, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex(`== != <= >= && || ! = < > + - * / % ? :`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{EQ, NEQ, LEQ, GEQ, ANDAND, OROR, NOT, ASSIGN, LANGLE,
		RANGLE, PLUS, MINUS, STAR, SLASH, PERCENT, QUESTION, COLON, EOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexLiterals(t *testing.T) {
	toks, err := Lex(`42 3.14 "hi\nthere" true false ident`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != INT || toks[0].Text != "42" {
		t.Fatalf("int token %+v", toks[0])
	}
	if toks[1].Kind != FLOAT || toks[1].Text != "3.14" {
		t.Fatalf("float token %+v", toks[1])
	}
	if toks[2].Kind != STRING || toks[2].Text != "hi\nthere" {
		t.Fatalf("string token %+v", toks[2])
	}
	if toks[3].Kind != KWTrue || toks[4].Kind != KWFalse || toks[5].Kind != IDENT {
		t.Fatal("keyword/ident tokens wrong")
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("a // line comment\n /* block\ncomment */ b")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Fatalf("comment skipping failed: %v", toks)
	}
	if toks[1].Pos.Line != 3 {
		t.Fatalf("line tracking through comments: %v", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	cases := map[string]string{
		`"unterminated`:   "unterminated string",
		"\"newline\nin\"": "newline in string",
		`"\q"`:            "unknown escape",
		"/* unclosed":     "unterminated block comment",
		"#":               "unexpected character",
	}
	for src, want := range cases {
		_, err := Lex(src)
		if err == nil {
			t.Errorf("Lex(%q) succeeded, want error containing %q", src, want)
			continue
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Lex(%q) error %q, want %q", src, err, want)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Fatalf("first token pos %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Fatalf("second token pos %v", toks[1].Pos)
	}
}
