package spl

import (
	"strings"
	"testing"
	"time"

	"streams/internal/pe"
)

// TestStatefulCustom verifies the logic state clause: a running counter
// persisting across tuples, serialized by the port's consumer lock.
func TestStatefulCustom(t *testing.T) {
	src := `
composite Main {
  graph
    stream<int64 i> N = Beacon() { param iterations: 100; }
    stream<int64 total> Sums = Custom(N) {
      logic state: {
        mutable int64 running = 0;
      }
      onTuple N: {
        running = running + i;
        submit({total = running}, Sums);
      }
    }
    () as Out = FileSink(Sums) { param file: "sums"; }
}
`
	for _, model := range []pe.Model{pe.Manual, pe.Dynamic} {
		files := compileRun(t, src, model, 2, nil)
		lines := files["sums"].Lines()
		if len(lines) != 100 {
			t.Fatalf("%v: got %d lines", model, len(lines))
		}
		// Prefix sums of 0..99.
		if lines[0] != "0" || lines[99] != "4950" {
			t.Fatalf("%v: state not persistent: first=%s last=%s", model, lines[0], lines[99])
		}
	}
}

// TestStatePerParallelReplica: each @parallel channel owns its state.
func TestStatePerParallelReplica(t *testing.T) {
	src := `
composite Main {
  graph
    stream<int64 i> N = Beacon() { param iterations: 90; }
    @parallel(width=3)
    stream<int64 c> Counts = Custom(N) {
      logic state: { mutable int64 n = 0; }
      onTuple N: {
        n = n + 1;
        submit({c = n}, Counts);
      }
    }
    () as Out = FileSink(Counts) { param file: "counts"; }
}
`
	files := compileRun(t, src, pe.Dynamic, 2, nil)
	lines := files["counts"].Lines()
	if len(lines) != 90 {
		t.Fatalf("got %d lines", len(lines))
	}
	// Each replica sees 30 tuples, so the maximum count is 30 (not 90).
	maxSeen := 0
	for _, l := range lines {
		v := 0
		if _, err := fmtSscan(l, &v); err != nil {
			t.Fatalf("bad line %q", l)
		}
		maxSeen = max(maxSeen, v)
	}
	if maxSeen != 30 {
		t.Fatalf("max per-replica count %d, want 30 (state must be per replica)", maxSeen)
	}
}

// TestWhileLoop exercises while/break/continue in logic.
func TestWhileLoop(t *testing.T) {
	src := `
composite Main {
  graph
    stream<int64 i> N = Beacon() { param iterations: 5; }
    stream<int64 f> Facts = Custom(N) {
      logic onTuple N: {
        mutable int64 acc = 1;
        mutable int64 k = i;
        while (k > 1) {
          acc = acc * k;
          k = k - 1;
          if (acc > 1000000) {
            break;
          }
        }
        submit({f = acc}, Facts);
      }
    }
    () as Out = FileSink(Facts) { param file: "facts"; }
}
`
	files := compileRun(t, src, pe.Manual, 1, nil)
	lines := files["facts"].Lines()
	want := []string{"1", "1", "2", "6", "24"} // factorials of 0..4
	if len(lines) != 5 {
		t.Fatalf("got %d lines", len(lines))
	}
	for i, l := range lines {
		if l != want[i] {
			t.Fatalf("factorial(%d) = %s, want %s", i, l, want[i])
		}
	}
}

func TestWhileContinue(t *testing.T) {
	src := `
composite Main {
  graph
    stream<int64 i> N = Beacon() { param iterations: 1; }
    stream<int64 s> Out = Custom(N) {
      logic onTuple N: {
        mutable int64 k = 0;
        mutable int64 sum = 0;
        while (k < 10) {
          k = k + 1;
          if (k % 2 == 1) {
            continue;
          }
          sum = sum + k;
        }
        submit({s = sum}, Out);
      }
    }
    () as S = FileSink(Out) { param file: "o"; }
}
`
	files := compileRun(t, src, pe.Manual, 1, nil)
	if got := files["o"].Lines(); len(got) != 1 || got[0] != "30" { // 2+4+6+8+10
		t.Fatalf("continue sum = %v, want [30]", got)
	}
}

func TestThrottleOperator(t *testing.T) {
	src := `
composite Main {
  graph
    stream<int64 i> N = Beacon() { param iterations: 20; }
    stream<int64 i> Slow = Throttle(N) { param rate: 200; }
    () as Out = FileSink(Slow) { param file: "o"; }
}
`
	start := time.Now()
	files := compileRun(t, src, pe.Manual, 1, nil)
	elapsed := time.Since(start)
	if got := len(files["o"].Lines()); got != 20 {
		t.Fatalf("throttle delivered %d", got)
	}
	// 20 tuples at 200/s ≈ 95ms minimum (first tuple unthrottled).
	if elapsed < 80*time.Millisecond {
		t.Fatalf("throttle too fast: %v", elapsed)
	}
}

func TestPunctorOperator(t *testing.T) {
	src := `
composite Main {
  graph
    stream<int64 i> N = Beacon() { param iterations: 10; }
    stream<int64 i> P = Punctor(N) { param count: 3; }
    () as Out = FileSink(P) { param file: "o"; }
}
`
	files := compileRun(t, src, pe.Manual, 1, nil)
	if got := len(files["o"].Lines()); got != 10 {
		t.Fatalf("punctor delivered %d data tuples", got)
	}
}

func TestDeDuplicateOperator(t *testing.T) {
	src := `
composite Main {
  graph
    stream<int64 i> N = Beacon() { param iterations: 12; }
    stream<int64 g> Groups = Custom(N) {
      logic onTuple N: { submit({g = i / 4}, Groups); }
    }
    stream<int64 g> Uniq = DeDuplicate(Groups) { param key: g; }
    () as Out = FileSink(Uniq) { param file: "o"; }
}
`
	files := compileRun(t, src, pe.Manual, 1, nil)
	lines := files["o"].Lines()
	want := []string{"0", "1", "2"}
	if len(lines) != 3 {
		t.Fatalf("dedup kept %d lines: %v", len(lines), lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("dedup output %v, want %v", lines, want)
		}
	}
}

func TestExtensionErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"break outside loop", `
composite Main { graph
  stream<int64 i> N = Beacon() { param iterations: 1; }
  stream<int64 i> C = Custom(N) {
    logic onTuple N: { break; }
  }
  () as S = FileSink(C) { param file: "x"; }
}`, "break outside a loop"},
		{"continue outside loop", `
composite Main { graph
  stream<int64 i> N = Beacon() { param iterations: 1; }
  stream<int64 i> C = Custom(N) {
    logic onTuple N: { continue; }
  }
  () as S = FileSink(C) { param file: "x"; }
}`, "continue outside a loop"},
		{"while cond not boolean", `
composite Main { graph
  stream<int64 i> N = Beacon() { param iterations: 1; }
  stream<int64 i> C = Custom(N) {
    logic onTuple N: { while (i) { } submit({i = i}, C); }
  }
  () as S = FileSink(C) { param file: "x"; }
}`, "want boolean"},
		{"state with non-decl", `
composite Main { graph
  stream<int64 i> N = Beacon() { param iterations: 1; }
  stream<int64 i> C = Custom(N) {
    logic state: { submit({i = 1}, C); }
    onTuple N: { submit({i = i}, C); }
  }
  () as S = FileSink(C) { param file: "x"; }
}`, "state clauses may only contain declarations"},
		{"state sees no attrs", `
composite Main { graph
  stream<int64 i> N = Beacon() { param iterations: 1; }
  stream<int64 i> C = Custom(N) {
    logic state: { int64 x = i; }
    onTuple N: { submit({i = x}, C); }
  }
  () as S = FileSink(C) { param file: "x"; }
}`, `undefined name "i"`},
		{"throttle needs rate", `
composite Main { graph
  stream<int64 i> N = Beacon() { param iterations: 1; }
  stream<int64 i> T = Throttle(N) {}
  () as S = FileSink(T) { param file: "x"; }
}`, "requires a rate"},
		{"dedup unknown key", `
composite Main { graph
  stream<int64 i> N = Beacon() { param iterations: 1; }
  stream<int64 i> D = DeDuplicate(N) { param key: nope; }
  () as S = FileSink(D) { param file: "x"; }
}`, `no attribute "nope"`},
		{"punctor bad count", `
composite Main { graph
  stream<int64 i> N = Beacon() { param iterations: 1; }
  stream<int64 i> P = Punctor(N) { param count: 0; }
  () as S = FileSink(P) { param file: "x"; }
}`, "positive count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src, Options{})
			if err == nil {
				t.Fatalf("compile succeeded, want error %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q missing %q", err, tc.want)
			}
		})
	}
}

// fmtSscan is a tiny strconv helper avoiding an fmt dependency cycle in
// tests.
func fmtSscan(s string, v *int) (int, error) {
	n := 0
	neg := false
	i := 0
	if i < len(s) && s[i] == '-' {
		neg = true
		i++
	}
	for ; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, errf(Pos{}, "bad int %q", s)
		}
		n = n*10 + int(s[i]-'0')
	}
	if neg {
		n = -n
	}
	*v = n
	return 1, nil
}

func TestAggregateSum(t *testing.T) {
	src := `
composite Main {
  graph
    stream<int64 i> N = Beacon() { param iterations: 10; }
    stream<int64 total> Sums = Aggregate(N) {
      param count: 4; function: sum; attr: i;
    }
    () as Out = FileSink(Sums) { param file: "o"; }
}
`
	files := compileRun(t, src, pe.Manual, 1, nil)
	lines := files["o"].Lines()
	// Windows: [0..3]=6, [4..7]=22, partial [8,9]=17 flushed at final.
	want := []string{"6", "22", "17"}
	if len(lines) != 3 {
		t.Fatalf("aggregate emitted %d values: %v", len(lines), lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("aggregate output %v, want %v", lines, want)
		}
	}
}

func TestAggregateAvgAndCount(t *testing.T) {
	src := `
composite Main {
  graph
    stream<int64 i> N = Beacon() { param iterations: 8; }
    stream<float64 m> Avgs = Aggregate(N) {
      param count: 4; function: avg; attr: i;
    }
    () as A = FileSink(Avgs) { param file: "avg"; }
}
`
	files := compileRun(t, src, pe.Dynamic, 2, nil)
	lines := files["avg"].Lines()
	if len(lines) != 2 || lines[0] != "1.5" || lines[1] != "5.5" {
		t.Fatalf("avg output %v, want [1.5 5.5]", lines)
	}

	src2 := `
composite Main {
  graph
    stream<int64 i> N = Beacon() { param iterations: 7; }
    stream<int64 c> Counts = Aggregate(N) {
      param count: 3; function: count;
    }
    () as C = FileSink(Counts) { param file: "cnt"; }
}
`
	files = compileRun(t, src2, pe.Manual, 1, nil)
	lines = files["cnt"].Lines()
	if len(lines) != 3 || lines[0] != "3" || lines[1] != "3" || lines[2] != "1" {
		t.Fatalf("count output %v, want [3 3 1]", lines)
	}
}

func TestAggregateMinMax(t *testing.T) {
	src := `
composite Main {
  graph
    stream<int64 i> N = Beacon() { param iterations: 6; }
    stream<int64 v> Vals = Custom(N) {
      logic onTuple N: { submit({v = (i % 2 == 0) ? -i : i * 10}, Vals); }
    }
    stream<int64 lo> Mins = Aggregate(Vals) {
      param count: 6; function: min; attr: v;
    }
    () as M = FileSink(Mins) { param file: "min"; }
}
`
	files := compileRun(t, src, pe.Manual, 1, nil)
	// Values: 0, 10, -2, 30, -4, 50 → min -4.
	if lines := files["min"].Lines(); len(lines) != 1 || lines[0] != "-4" {
		t.Fatalf("min output %v, want [-4]", lines)
	}
}

func TestAggregateErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"bad function", `
composite Main { graph
  stream<int64 i> N = Beacon() { param iterations: 1; }
  stream<int64 x> A = Aggregate(N) { param count: 2; function: median; attr: i; }
  () as S = FileSink(A) { param file: "x"; }
}`, "unknown Aggregate function"},
		{"missing attr", `
composite Main { graph
  stream<int64 i> N = Beacon() { param iterations: 1; }
  stream<int64 x> A = Aggregate(N) { param count: 2; function: sum; }
  () as S = FileSink(A) { param file: "x"; }
}`, "requires an attr"},
		{"avg into int", `
composite Main { graph
  stream<int64 i> N = Beacon() { param iterations: 1; }
  stream<int64 x> A = Aggregate(N) { param count: 2; function: avg; attr: i; }
  () as S = FileSink(A) { param file: "x"; }
}`, "float64"},
		{"non-numeric attr", `
composite Main { graph
  stream<rstring s> F = FileSource() { param file: "f"; }
  stream<int64 x> A = Aggregate(F) { param count: 2; function: sum; attr: s; }
  () as S = FileSink(A) { param file: "x"; }
}`, "want a number"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src, Options{})
			if err == nil {
				t.Fatalf("compile succeeded, want %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q missing %q", err, tc.want)
			}
		})
	}
}

// TestListAndAttrAssignment exercises the interpreter's copy-on-write
// assignment paths for list indices and tuple attributes.
func TestListAndAttrAssignment(t *testing.T) {
	src := `
composite Main {
  type
    Pair = int64 a, int64 b;
  graph
    stream<int64 i> N = Beacon() { param iterations: 3; }
    stream<Pair> Pairs = Custom(N) {
      logic onTuple N: { submit({a = i, b = i * 10}, Pairs); }
    }
    stream<int64 r> Out = Custom(Pairs) {
      logic onTuple Pairs: {
        mutable list<int64> xs = [1, 2, 3];
        xs[1] = a;
        mutable Pair copy = Pairs;
        copy.b = xs[1] + b;
        submit({r = copy.b}, Out);
      }
    }
    () as S = FileSink(Out) { param file: "o"; }
}
`
	files := compileRun(t, src, pe.Manual, 1, nil)
	lines := files["o"].Lines()
	// copy.b = i + i*10 = 11i for i = 0, 1, 2.
	want := []string{"0", "11", "22"}
	if len(lines) != 3 {
		t.Fatalf("got %v", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("output %v, want %v", lines, want)
		}
	}
}

// TestFloatAggregate exercises the float paths through Aggregate.
func TestFloatAggregate(t *testing.T) {
	src := `
composite Main {
  graph
    stream<int64 i> N = Beacon() { param iterations: 4; }
    stream<float64 v> F = Custom(N) {
      logic onTuple N: { submit({v = toFloat64(i) / 2.0}, F); }
    }
    stream<float64 hi> Maxs = Aggregate(F) {
      param count: 4; function: max; attr: v;
    }
    () as S = FileSink(Maxs) { param file: "o"; }
}
`
	files := compileRun(t, src, pe.Manual, 1, nil)
	if lines := files["o"].Lines(); len(lines) != 1 || lines[0] != "1.5" {
		t.Fatalf("float max output %v, want [1.5]", lines)
	}
}

// TestCompositeArityErrors covers composite invocation mismatch paths.
func TestCompositeArityErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"wrong input count", `
composite Inner(output O; input A, B) {
  graph
    stream<int64 i> O = Custom(A; B) {
      logic onTuple A: { submit({i = i}, O); }
    }
}
composite Main { graph
  stream<int64 i> N = Beacon() { param iterations: 1; }
  stream<int64 i> X = Inner(N) {}
  () as S = FileSink(X) { param file: "x"; }
}`, "takes 2 input streams, got 1"},
		{"sink invocation of producing composite", `
composite Inner(output O) {
  graph
    stream<int64 i> O = Beacon() { param iterations: 1; }
}
composite Main { graph
  () as X = Inner() {}
  stream<int64 i> N = Beacon() { param iterations: 1; }
  () as S = FileSink(N) { param file: "x"; }
}`, "outputs; invocation declares 0"},
		{"parallel composite", `
composite Inner(output O; input A) {
  graph
    stream<int64 i> O = Custom(A) {
      logic onTuple A: { submit({i = i}, O); }
    }
}
composite Main { graph
  stream<int64 i> N = Beacon() { param iterations: 1; }
  @parallel(width=2)
  stream<int64 i> X = Inner(N) {}
  () as S = FileSink(X) { param file: "x"; }
}`, "@parallel on composite invocations"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src, Options{})
			if err == nil {
				t.Fatalf("compile succeeded, want %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q missing %q", err, tc.want)
			}
		})
	}
}
