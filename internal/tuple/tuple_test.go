package tuple

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Data:       "data",
		WindowMark: "window",
		FinalMark:  "final",
		Kind(7):    "Kind(7)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestNewData(t *testing.T) {
	tp := NewData(1, 2, 3)
	if tp.Kind != Data {
		t.Fatalf("Kind = %v, want Data", tp.Kind)
	}
	if tp.Words[0] != 1 || tp.Words[1] != 2 || tp.Words[2] != 3 || tp.Words[3] != 0 {
		t.Fatalf("Words = %v", tp.Words)
	}
	if tp.IsPunct() {
		t.Fatal("data tuple reported as punctuation")
	}
}

func TestNewDataOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewData with too many words did not panic")
		}
	}()
	NewData(1, 2, 3, 4, 5, 6, 7, 8, 9)
}

func TestPunctuations(t *testing.T) {
	if !Final().IsPunct() || Final().Kind != FinalMark {
		t.Fatal("Final() is wrong")
	}
	if !Window().IsPunct() || Window().Kind != WindowMark {
		t.Fatal("Window() is wrong")
	}
}

// TestValueSemantics verifies that assigning a tuple copies the payload —
// the property the runtime relies on for isolation between operators.
func TestValueSemantics(t *testing.T) {
	a := NewData(42)
	b := a
	b.Words[0] = 7
	if a.Words[0] != 42 {
		t.Fatal("tuple copy aliased payload words")
	}
}

func TestStringFormats(t *testing.T) {
	tp := NewData(5)
	tp.Port = 3
	tp.Seq = 9
	if got, want := tp.String(), "tuple{port=3 seq=9 w0=5}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	f := Final()
	f.Port = 2
	if got, want := f.String(), "tuple{final port=2}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Property: NewData never mutates inputs and stores all words in order.
func TestNewDataProperty(t *testing.T) {
	f := func(w0, w1, w2, w3 uint64) bool {
		tp := NewData(w0, w1, w2, w3)
		return tp.Words[0] == w0 && tp.Words[1] == w1 &&
			tp.Words[2] == w2 && tp.Words[3] == w3 &&
			tp.Words[4] == 0 && tp.Kind == Data
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
