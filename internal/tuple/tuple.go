// Package tuple defines the unit of data flow in the streaming runtime.
//
// A Tuple carries the application payload plus the metadata the scheduler
// needs to execute it — most importantly the destination input port. As
// in IBM Streams, tuples are value types: submitting a tuple downstream
// copies it into the receiving port's queue, so the runtime never shares
// mutable payload state between operators and never allocates per tuple
// on the hot path (§4.1.5 of the paper explains why the product made the
// same trade).
//
// The runtime also carries punctuations — in-band control signals sent
// over streams. We model the two kinds the experiments need: window
// punctuations (pass-through markers) and final punctuations, which tell
// a port that no more tuples will ever arrive on one of its upstream
// streams.
package tuple

import "fmt"

// Kind discriminates data tuples from in-band punctuation.
type Kind uint8

const (
	// Data is an ordinary application tuple.
	Data Kind = iota
	// WindowMark is a window punctuation, forwarded like a tuple.
	WindowMark
	// FinalMark is a final punctuation: the sending stream is closed.
	FinalMark
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case WindowMark:
		return "window"
	case FinalMark:
		return "final"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// PayloadWords is the number of 64-bit payload slots carried inline by
// every tuple. Eight words is enough for all the evaluation workloads and
// for the mini-SPL examples' scalar fields; larger values live in Ref.
const PayloadWords = 8

// Tuple is the unit of work the scheduler moves between operators. The
// zero value is a valid (empty) data tuple.
type Tuple struct {
	// Port is the global ID of the destination input port. It is set by
	// the runtime when the tuple is routed, not by operators.
	Port int32
	// Kind discriminates data from punctuation.
	Kind Kind
	// Seq is a per-stream sequence number stamped by the sending output
	// port. The test suite uses it to verify the global ordering
	// requirement; operators may read it but must not depend on it.
	Seq uint64
	// Stamp is the tuple's source-submission time (UnixNano), written by
	// the runtime at the source seam when end-to-end latency measurement
	// is enabled and read back at the sink-drain seam; 0 means unstamped.
	// Like Port and Seq it belongs to the runtime, not to operators.
	Stamp int64
	// Words is the inline scalar payload.
	Words [PayloadWords]uint64
	// Ref optionally points at an immutable out-of-line payload (for
	// example a parsed log line in the loginfailures example). Because
	// tuples are copied by value, anything referenced here must be
	// treated as read-only by downstream operators.
	Ref any
}

// NewData returns a data tuple whose first payload words are set to the
// given values.
func NewData(words ...uint64) Tuple {
	var t Tuple
	if len(words) > PayloadWords {
		panic(fmt.Sprintf("tuple: %d payload words exceed the inline capacity %d", len(words), PayloadWords))
	}
	copy(t.Words[:], words)
	return t
}

// Final returns a final punctuation.
func Final() Tuple { return Tuple{Kind: FinalMark} }

// Window returns a window punctuation.
func Window() Tuple { return Tuple{Kind: WindowMark} }

// IsPunct reports whether the tuple is any kind of punctuation.
func (t Tuple) IsPunct() bool { return t.Kind != Data }

// String implements fmt.Stringer for debugging output.
func (t Tuple) String() string {
	if t.Kind != Data {
		return fmt.Sprintf("tuple{%s port=%d}", t.Kind, t.Port)
	}
	return fmt.Sprintf("tuple{port=%d seq=%d w0=%d}", t.Port, t.Seq, t.Words[0])
}
