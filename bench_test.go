// Benchmarks regenerating the paper's evaluation, one per figure panel
// group, plus the ablation benchmarks DESIGN.md calls out.
//
//	go test -bench=. -benchmem
//
// Figure benchmarks drive the calibrated machine model (internal/sim)
// and attach the headline series values as custom metrics, so a bench
// run reproduces the numbers EXPERIMENTS.md records. Native benchmarks
// execute the real runtime on the host. Ablation benchmarks reverse one
// scheduler design decision each and measure the cost in real execution.
package streams_test

import (
	"fmt"
	"testing"

	"streams"
	"streams/internal/elastic"
	"streams/internal/fig"
	"streams/internal/pe"
	"streams/internal/sched"
	"streams/internal/sim"
)

// ----- Figure 9, rows 1–2: pure pipeline -----

func BenchmarkFig9Pipeline(b *testing.B) {
	benchStaticPanels(b, fig.Fig9Pipeline())
}

// ----- Figure 9, rows 3–4: pure data parallel -----

func BenchmarkFig9DataParallel(b *testing.B) {
	benchStaticPanels(b, fig.Fig9DataParallel())
}

// ----- Figure 10: mixed data parallel and pipeline -----

func BenchmarkFig10Mixed(b *testing.B) {
	benchStaticPanels(b, fig.Fig10())
}

func benchStaticPanels(b *testing.B, panels []fig.Panel) {
	for _, p := range panels {
		p := p
		b.Run(p.ID, func(b *testing.B) {
			var r fig.StaticResult
			for i := 0; i < b.N; i++ {
				r = fig.RunStatic(p, 5)
			}
			_, best := r.BestStatic()
			b.ReportMetric(r.Manual, "manual-tps")
			b.ReportMetric(r.Dedicated, "dedicated-tps")
			b.ReportMetric(best, "dynamic-best-tps")
			b.ReportMetric(r.ElasticMean, "elastic-tps")
			b.ReportMetric(float64(r.ElasticLo), "elastic-lo-threads")
			b.ReportMetric(float64(r.ElasticHi), "elastic-hi-threads")
		})
	}
}

// ----- Figure 11: elasticity traces -----

func BenchmarkFig11PipelineTrace(b *testing.B) {
	benchTracePanels(b, fig.Fig11()[0:2])
}

func BenchmarkFig11DataParallelTrace(b *testing.B) {
	benchTracePanels(b, fig.Fig11()[2:4])
}

func BenchmarkFig11MixedTrace(b *testing.B) {
	benchTracePanels(b, fig.Fig11()[4:6])
}

func benchTracePanels(b *testing.B, panels []fig.Panel) {
	for _, p := range panels {
		p := p
		b.Run(p.ID, func(b *testing.B) {
			mo := sim.Model{M: p.Machine, W: p.Work}
			var trace []sim.TracePoint
			for i := 0; i < b.N; i++ {
				trace = sim.RunElastic(mo, sim.ElasticConfig{Seed: 1})
			}
			lo, hi := sim.SettledLevels(trace, 0.2)
			b.ReportMetric(float64(lo), "settle-lo-threads")
			b.ReportMetric(float64(hi), "settle-hi-threads")
			b.ReportMetric(sim.SettledThroughput(trace, 0.2), "settled-pe-tps")
		})
	}
}

// ----- Native runtime benchmarks (real execution on this host) -----

// benchNative pushes b.N tuples through a real pipeline and reports
// per-tuple cost.
func benchNative(b *testing.B, model streams.Model, threads, depth, qcap int, scfg sched.Config) {
	b.Helper()
	top := streams.NewTopology()
	src := top.Add(&streams.Generator{Limit: uint64(b.N)}, 0, 1)
	prev := src
	for i := 0; i < depth; i++ {
		w := top.Add(&streams.Worker{Cost: 16}, 1, 1)
		top.Connect(prev, 0, w, 0)
		prev = w
	}
	snk := &streams.Sink{}
	out := top.Add(snk, 1, 0)
	top.Connect(prev, 0, out, 0)
	g, err := top.Build()
	if err != nil {
		b.Fatal(err)
	}
	scfg.MaxThreads = max(threads, 1)
	if qcap != 0 {
		scfg.QueueCap = qcap
	}
	p, err := pe.New(g, pe.Config{
		Model:      model,
		Threads:    threads,
		MaxThreads: max(threads, 1),
		QueueCap:   qcap,
		Sched:      scfg,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := p.Start(); err != nil {
		b.Fatal(err)
	}
	p.Wait()
	b.StopTimer()
	if snk.Count() != uint64(b.N) {
		b.Fatalf("delivered %d of %d tuples", snk.Count(), b.N)
	}
}

func BenchmarkNativeModels(b *testing.B) {
	for _, model := range []streams.Model{streams.ModelManual, streams.ModelDedicated, streams.ModelDynamic} {
		b.Run(model.String(), func(b *testing.B) {
			benchNative(b, model, 2, 16, 0, sched.Config{})
		})
	}
}

func BenchmarkNativeDynamicThreads(b *testing.B) {
	for _, threads := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			benchNative(b, streams.ModelDynamic, threads, 16, 0, sched.Config{})
		})
	}
}

// ----- Ablation benchmarks (DESIGN.md's design-choice index) -----

// benchAblation measures the dynamic scheduler with one design decision
// reversed.
func benchAblation(b *testing.B, qcap int, scfg sched.Config) {
	benchNative(b, streams.ModelDynamic, 2, 16, qcap, scfg)
}

func BenchmarkAblationRetryVsAbandon(b *testing.B) {
	// The retry-vs-abandon decision is about the global free-list walk,
	// so both arms run the single global list.
	b.Run("abandon-paper", func(b *testing.B) { benchAblation(b, 0, sched.Config{GlobalFreeList: true}) })
	b.Run("retry", func(b *testing.B) {
		benchAblation(b, 0, sched.Config{GlobalFreeList: true, RetryOnContention: true})
	})
}

func BenchmarkAblationRescheduleVsBlock(b *testing.B) {
	// Tiny queues force the full-queue path constantly.
	b.Run("reschedule-paper", func(b *testing.B) { benchAblation(b, 4, sched.Config{}) })
	b.Run("block", func(b *testing.B) { benchAblation(b, 4, sched.Config{BlockOnFullQueue: true}) })
}

func BenchmarkAblationReschedLimit(b *testing.B) {
	for _, limit := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("limit=%d", limit), func(b *testing.B) {
			benchAblation(b, 64, sched.Config{ReschedLimit: limit})
		})
	}
}

func BenchmarkAblationFreeListOrder(b *testing.B) {
	// The ordering ablation is defined on the single global list
	// (FreeListLIFO implies GlobalFreeList), so the FIFO arm pins it too.
	b.Run("fifo-lru-paper", func(b *testing.B) { benchAblation(b, 0, sched.Config{GlobalFreeList: true}) })
	b.Run("lifo-mru", func(b *testing.B) { benchAblation(b, 0, sched.Config{FreeListLIFO: true}) })
}

// BenchmarkAblationFreeListSharding measures what the sharded free list
// (this repo's extension beyond the paper) buys over the paper's single
// global MPMC list on a real pipeline run; the microbenchmark sweep
// behind the same question is BenchmarkFreeListContention in
// internal/sched.
func BenchmarkAblationFreeListSharding(b *testing.B) {
	b.Run("sharded", func(b *testing.B) { benchAblation(b, 0, sched.Config{}) })
	b.Run("global-paper", func(b *testing.B) { benchAblation(b, 0, sched.Config{GlobalFreeList: true}) })
}

func BenchmarkAblationStopFlags(b *testing.B) {
	b.Run("per-thread-paper", func(b *testing.B) { benchAblation(b, 0, sched.Config{}) })
	b.Run("shared", func(b *testing.B) { benchAblation(b, 0, sched.Config{SharedStopFlags: true}) })
}

// BenchmarkAblationElasticHistory compares trust-wipe (the paper) with
// the remember-history extension (§5.4's future work) on the paper's own
// pathology: the noisy Power8 data-parallel run of Figure 11, where the
// wipe-mode controller keeps discarding history and oscillates. Reported
// metrics: thread-level changes in the second half of a 1400s run, plus
// workload-change recovery behaviour.
func BenchmarkAblationElasticHistory(b *testing.B) {
	mo := sim.Model{M: sim.Power8(), W: sim.Workload{Width: 1000, Depth: 1, Cost: 1000000}}
	for _, remember := range []bool{false, true} {
		name := "wipe-paper"
		if remember {
			name = "remember-history"
		}
		b.Run(name, func(b *testing.B) {
			var changes int
			var stable, frac float64
			for i := 0; i < b.N; i++ {
				trace := sim.RunElastic(mo, sim.ElasticConfig{Seed: 5, RememberHistory: remember})
				changes = 0
				half := trace[len(trace)/2:]
				for j := 1; j < len(half); j++ {
					if half[j].Threads != half[j-1].Threads {
						changes++
					}
				}
				stable, frac = measureRecovery(remember)
			}
			b.ReportMetric(float64(changes), "oscillation-changes")
			b.ReportMetric(stable, "periods-to-stable")
			b.ReportMetric(frac*100, "settled-pct-of-best")
		})
	}
}

// measureRecovery simulates a workload change under the Xeon mixed model
// and returns (a) the last period in which the controller still changed
// its level — how long the disruption lasted — and (b) the fraction of
// the post-change optimum the controller finally operates at.
func measureRecovery(remember bool) (stablePeriod, settledFrac float64) {
	mo := sim.Model{M: sim.Xeon(), W: sim.Workload{Width: 10, Depth: 100, Cost: 1000}}
	mo2 := sim.Model{M: sim.Xeon(), W: sim.Workload{Width: 10, Depth: 100, Cost: 100}}
	ctl, err := elastic.New(elastic.Config{
		MaxLevel:        sim.Xeon().LogicalCores(),
		Geometric:       true,
		RememberHistory: remember,
	})
	if err != nil {
		panic(err)
	}
	level := ctl.Level()
	// Settle on workload 1.
	for i := 0; i < 60; i++ {
		level = ctl.Update(mo.PEThroughput(sim.Dynamic, level))
	}
	// Switch workloads; watch 100 periods.
	const horizon = 100
	prev := level
	for i := 1; i <= horizon; i++ {
		level = ctl.Update(mo2.PEThroughput(sim.Dynamic, level))
		if level != prev {
			stablePeriod = float64(i)
		}
		prev = level
	}
	_, best := mo2.BestDynamic()
	settledFrac = mo2.SinkThroughput(sim.Dynamic, level) / best
	return stablePeriod, settledFrac
}

// BenchmarkLatencyModels measures mean end-to-end tuple latency under
// each threading model with a throttled source (§2.2: manual has the
// lowest latency because there are no queues and no copies).
func BenchmarkLatencyModels(b *testing.B) {
	for _, model := range []streams.Model{streams.ModelManual, streams.ModelDedicated, streams.ModelDynamic} {
		b.Run(model.String(), func(b *testing.B) {
			top := streams.NewTopology()
			src := top.Add(&streams.Generator{Limit: uint64(b.N), Stamp: true}, 0, 1)
			prev := src
			for i := 0; i < 8; i++ {
				w := top.Add(&streams.Worker{Cost: 50}, 1, 1)
				top.Connect(prev, 0, w, 0)
				prev = w
			}
			snk := &streams.Sink{TrackLatency: true}
			out := top.Add(snk, 1, 0)
			top.Connect(prev, 0, out, 0)
			job, err := streams.Run(top, streams.RunConfig{Model: model, Threads: 2, MaxThreads: 2})
			if err != nil {
				b.Fatal(err)
			}
			job.Wait()
			mean, maxLat := snk.Latency()
			b.ReportMetric(float64(mean.Nanoseconds()), "mean-latency-ns")
			b.ReportMetric(float64(maxLat.Nanoseconds()), "max-latency-ns")
		})
	}
}
