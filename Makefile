GO ?= go

.PHONY: all vet build test race check bench bench-contention

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: vet build test race

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# bench-contention sweeps the free-list contention benchmark (global vs
# sharded × threads × ports) and archives the results as JSON.
bench-contention:
	$(GO) test -bench BenchmarkFreeListContention -run '^$$' ./internal/sched \
		| $(GO) run ./cmd/benchjson > contention.json
	@echo wrote contention.json
