GO ?= go

.PHONY: all vet build test race check chaos bench bench-contention

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: vet build test race

# chaos runs the deterministic fault-injection soak under the race
# detector: seeded panics, slowdowns and queue stalls inside the
# scheduler, and connection drops across PE boundaries. The seeds are
# fixed in the tests, so failures reproduce exactly.
chaos:
	$(GO) test -race -count=1 -run Chaos -v ./internal/sched ./internal/pe ./internal/fuse ./internal/xport

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# bench-contention sweeps the free-list contention benchmark (global vs
# sharded × threads × ports) and archives the results as JSON.
bench-contention:
	$(GO) test -bench BenchmarkFreeListContention -run '^$$' ./internal/sched \
		| $(GO) run ./cmd/benchjson > contention.json
	@echo wrote contention.json
