GO ?= go

.PHONY: all vet build test race check bench

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race suite covers the packages with lock-free concurrency: the
# queue/enforcer layer and the scheduler.
race:
	$(GO) test -race ./internal/lfq ./internal/sched

check: vet build test race

bench:
	$(GO) test -bench . -benchmem -run '^$$' .
