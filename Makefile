GO ?= go

.PHONY: all vet build test race check chaos chaos-ingest bench bench-contention bench-chain bench-adaptive bench-vm bench-ingest bench-obs trace-smoke obs-smoke

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: vet build test race

# chaos runs the deterministic fault-injection soak under the race
# detector: seeded panics, slowdowns and queue stalls inside the
# scheduler, and connection drops across PE boundaries. The seeds are
# fixed in the tests, so failures reproduce exactly.
chaos:
	FLIGHTREC_DIR=$(CURDIR) $(GO) test -race -count=1 -run Chaos -v ./internal/sched ./internal/pe ./internal/fuse ./internal/xport ./internal/obs

# chaos-ingest soaks the network front door under the race detector:
# concurrent two-class clients overdrive the admission layer while
# seeded client-flood, wedged-reader and connection-reset faults fire,
# with the scheduler watchdog armed. Passing means the run drained
# cleanly, the watchdog stayed quiet, and the admission boundary
# conserved exactly (sink count == admitted count). The ingest property
# tests (Block loss-freedom, shed FIFO + punctuation survival) ride
# along under the same -race run.
chaos-ingest:
	FLIGHTREC_DIR=$(CURDIR) $(GO) test -race -count=1 -v \
		-run 'TestChaosIngest|TestBlockNoAdmittedTupleDropped|TestShedOldestFIFOAndPunctSurvival|TestShedNewestKeepsBacklog' \
		./internal/ingest

# trace-smoke proves the observability path end to end: run the real
# runtime on a mixed topology with the scheduler tracer, latency
# histogram, elasticity and chaos armed; validate the emitted Chrome
# trace_event file (structure plus the event kinds the run must
# produce); and run the tracer and endpoint tests under the race
# detector. The chaos seed is fixed, so the required kinds are
# deterministic. The second, chaos-free run validates the vm-fuse and
# vm-vec instants separately: an armed injector makes every fused run
# decline (faults must flow through the per-operator seams), so fusion
# — and the vectorized batches riding on it — can only be observed
# without chaos.
trace-smoke:
	$(GO) run ./cmd/streamsim -native -w 10 -d 100 -cost 200 -threads 8 \
		-elastic -adapt 100ms -chaos panic=0.0005 -quarantine 1 \
		-latency -fairclaim -obs -trace trace-smoke.json -dur 3s
	$(GO) run ./cmd/tracecheck -strict -require steal,park,quarantine,elastic-level,chain,chain-stop,relax-level,bp-sample trace-smoke.json
	$(GO) run ./cmd/streamsim -native -w 1 -d 12 -cost 50 -threads 2 \
		-vm -trace trace-vm-smoke.json -dur 2s
	$(GO) run ./cmd/tracecheck -strict -require chain,vm-fuse,vm-vec trace-vm-smoke.json
	$(GO) test -race -count=1 ./internal/trace ./internal/debugz ./internal/obs ./cmd/tracecheck
	@rm -f trace-smoke.json trace-vm-smoke.json

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# bench-contention sweeps the free-list contention benchmark (global vs
# sharded × threads × ports) and archives the results as JSON.
bench-contention:
	$(GO) test -bench BenchmarkFreeListContention -run '^$$' ./internal/sched \
		| $(GO) run ./cmd/benchjson > contention.json
	@echo wrote contention.json

# bench-chain sweeps the inline-chain benchmark (chain vs -nochain ×
# pipeline depth {10, 100, 1000}) and archives the results as JSON.
# The iteration count is fixed so both modes run the same workload and
# the chain/nochain ratio is a like-for-like comparison; 20000
# end-to-end tuples keeps the slowest cell (nochain/depth=1000) under
# ~20s while giving depth=1000 enough lifetime to escape startup noise.
bench-chain:
	$(GO) test -bench BenchmarkPipelineChain -benchtime=20000x -run '^$$' ./internal/sched \
		| $(GO) run ./cmd/benchjson > BENCH_chain.json
	@echo wrote BENCH_chain.json

# bench-vm compares the three operator dispatch forms on identical
# logic — one Custom through the closure evaluator vs its bytecode
# program, and a three-operator chain executed Process-to-Process vs as
# one fused superinstruction program — plus the scalar-vs-vectorized
# batch sweep (ns/op is per batch there) — and archives the results as
# JSON. Iterations are fixed so paired cells run the same workload and
# the closure/vm, chain/fused and scalar/vec ratios are like-for-like.
# CI's vm smoke gates merges against this file via benchjson -compare.
bench-vm:
	( $(GO) test -bench BenchmarkVMDispatch -benchtime=2000000x -run '^$$' ./internal/spl ; \
	  $(GO) test -bench BenchmarkVMVectorized -benchtime=20000x -run '^$$' ./internal/spl ) \
		| $(GO) run ./cmd/benchjson > BENCH_vm.json
	@echo wrote BENCH_vm.json

# bench-adaptive sweeps the contention-adaptive benchmarks and archives
# them as JSON: the k-relaxed free-list sweep (static width extremes vs
# the online-adapted width, × threads) and the port-claim latency sweep
# (back-off vs fair-ticket under oversubscription). Iteration counts are
# fixed so every mode runs the same workload: 5e6 hint cycles gives the
# adaptive controller dozens of 2 ms adaptation ticks to converge, and
# 2e5 claim cycles is long enough that back-off's run-length-proportional
# starvation tail overtakes the fair line's fixed wait (the crossover the
# p99 acceptance is about) while keeping the slowest cell (fair, every
# acquisition through the ticket line) around ~4 minutes.
bench-adaptive:
	( $(GO) test -bench BenchmarkAdaptiveFreeList -benchtime=5000000x -run '^$$' ./internal/sched ; \
	  $(GO) test -bench BenchmarkPortClaim -benchtime=200000x -timeout 20m -run '^$$' ./internal/sched ) \
		| $(GO) run ./cmd/benchjson > BENCH_adaptive.json
	@echo wrote BENCH_adaptive.json

# bench-ingest runs the overload SLO experiment (EXPERIMENTS.md): a
# gold/bronze tenant mix offered 1x and 2x the contracted capacity by
# open-loop generators over real TCP connections. The archived metrics
# are the acceptance criteria — admitted_tps within ~10% of the
# contract at 2x, shed_frac accounting for the excess, and gold's p99
# flat across loads while bronze absorbs the shedding. -benchtime=1x:
# each cell is one fixed-duration offered-load sweep, not an op to be
# iterated.
bench-ingest:
	$(GO) test -bench BenchmarkIngestOverload -benchtime=1x -run '^$$' ./internal/ingest \
		| $(GO) run ./cmd/benchjson > BENCH_ingest.json
	@echo wrote BENCH_ingest.json

# bench-obs measures what flow observability costs the data path: the
# same pipeline with no collector, with the collector idle, and
# sampling at the default (100ms) and an adversarial (5ms) rate. The
# acceptance budget (EXPERIMENTS.md) is <=2% throughput loss enabled
# and no measurable regression disabled; iterations are fixed so every
# cell runs the identical workload.
bench-obs:
	$(GO) test -bench BenchmarkObsOverhead -benchtime=2000000x -run '^$$' ./internal/obs \
		| $(GO) run ./cmd/benchjson > BENCH_obs.json
	@echo wrote BENCH_obs.json

# obs-smoke proves the metrics-export path end to end: run the real
# runtime with the flow sampler and debug endpoint up, scrape /metricz
# mid-run and validate the exposition with the strict OpenMetrics
# parser (required families pinned), fetch the /debugz/flows panel and
# a forced flight-recorder dump, and check the post-run attribution
# report names a bottleneck on a deliberately skewed pipeline.
obs-smoke:
	$(GO) build -o /tmp/streamsim-smoke ./cmd/streamsim
	/tmp/streamsim-smoke -native -w 1 -d 4 -cost 2000 -threads 2 -dur 6s \
		-obs -latency -debug-addr 127.0.0.1:6099 -flightrec /tmp/flightrec-smoke.json \
		> /tmp/obs-smoke.out 2>&1 & \
	SIM=$$!; sleep 3; \
	curl -sf http://127.0.0.1:6099/metricz | $(GO) run ./cmd/metriczcheck \
		-require streams_executed,streams_edge_depth,streams_edge_blocked_seconds,streams_backlog || { kill $$SIM; cat /tmp/obs-smoke.out; exit 1; }; \
	curl -sf http://127.0.0.1:6099/debugz/flows | grep -q "bottleneck:" || { kill $$SIM; cat /tmp/obs-smoke.out; exit 1; }; \
	curl -sf "http://127.0.0.1:6099/debugz/flightrec?dump=now" | grep -q '"reason"' || { kill $$SIM; cat /tmp/obs-smoke.out; exit 1; }; \
	wait $$SIM
	grep -q "bottleneck:" /tmp/obs-smoke.out
	$(GO) test -race -count=1 ./internal/obs ./cmd/metriczcheck
	@rm -f /tmp/streamsim-smoke /tmp/obs-smoke.out /tmp/flightrec-smoke.json
	@echo obs-smoke ok
